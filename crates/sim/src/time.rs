//! Virtual time for the simulation.
//!
//! Time is represented as `f64` seconds since simulation start, wrapped in
//! newtypes so that times and durations cannot be confused and so that the
//! ordering used by the event queue is total (NaN is rejected at
//! construction).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// An instant in virtual time, in seconds since simulation start.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimTime(f64);

/// A span of virtual time, in seconds. Always finite; may be zero.
#[derive(Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub struct SimDuration(f64);

impl SimTime {
    /// The simulation epoch (t = 0).
    pub const ZERO: SimTime = SimTime(0.0);

    /// Construct from seconds. Panics on NaN: a NaN time would break the
    /// total order the event queue relies on.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(!secs.is_nan(), "SimTime cannot be NaN");
        SimTime(secs)
    }

    /// Seconds since simulation start.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Hours since simulation start.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// Duration elapsed since `earlier`. Panics if `earlier` is later than
    /// `self`; callers that may race should use [`SimTime::saturating_since`].
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        assert!(
            self.0 >= earlier.0,
            "SimTime::since: earlier ({}) is after self ({})",
            earlier.0,
            self.0
        );
        SimDuration(self.0 - earlier.0)
    }

    /// Like [`SimTime::since`] but clamps negative spans to zero.
    #[inline]
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration((self.0 - earlier.0).max(0.0))
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: SimTime) -> SimTime {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }
}

impl SimDuration {
    /// Zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0.0);

    /// Construct from seconds. Panics on NaN or negative values.
    #[inline]
    pub fn from_secs(secs: f64) -> Self {
        assert!(
            secs.is_finite() && secs >= 0.0,
            "SimDuration must be finite and non-negative, got {secs}"
        );
        SimDuration(secs)
    }

    /// Construct from whole minutes.
    #[inline]
    pub fn from_mins(mins: f64) -> Self {
        Self::from_secs(mins * 60.0)
    }

    /// Construct from whole hours.
    #[inline]
    pub fn from_hours(hours: f64) -> Self {
        Self::from_secs(hours * 3600.0)
    }

    /// Length in seconds.
    #[inline]
    pub fn as_secs(self) -> f64 {
        self.0
    }

    /// Length in minutes.
    #[inline]
    pub fn as_mins(self) -> f64 {
        self.0 / 60.0
    }

    /// Length in hours.
    #[inline]
    pub fn as_hours(self) -> f64 {
        self.0 / 3600.0
    }

    /// The longer of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self.0 >= other.0 {
            self
        } else {
            other
        }
    }

    /// The shorter of two durations.
    #[inline]
    pub fn min(self, other: SimDuration) -> SimDuration {
        if self.0 <= other.0 {
            self
        } else {
            other
        }
    }

    /// Saturating subtraction: result clamps at zero.
    #[inline]
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration((self.0 - other.0).max(0.0))
    }

    /// True if this duration is exactly zero.
    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        assert!(
            self.0 >= rhs.0,
            "SimDuration subtraction underflow: {} - {}",
            self.0,
            rhs.0
        );
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 * rhs)
    }
}

impl Div<f64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: f64) -> SimDuration {
        SimDuration::from_secs(self.0 / rhs)
    }
}

impl Div for SimDuration {
    type Output = f64;
    #[inline]
    fn div(self, rhs: SimDuration) -> f64 {
        self.0 / rhs.0
    }
}

// Total order: NaN is excluded at construction, so unwrap is safe. With
// an explicit `Ord`, `PartialOrd` must delegate to it (clippy:
// derive_ord_xor_partial_ord), so both are written out.
impl Eq for SimTime {}
impl PartialOrd for SimTime {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0.partial_cmp(&other.0).expect("SimTime is never NaN")
    }
}

impl Eq for SimDuration {}
impl PartialOrd for SimDuration {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for SimDuration {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.0
            .partial_cmp(&other.0)
            .expect("SimDuration is never NaN")
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.3}s", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}", self.0)
    }
}

/// Sum of durations.
impl std::iter::Sum for SimDuration {
    fn sum<I: Iterator<Item = SimDuration>>(iter: I) -> Self {
        iter.fold(SimDuration::ZERO, |a, b| a + b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_arithmetic_roundtrips() {
        let t0 = SimTime::from_secs(10.0);
        let d = SimDuration::from_secs(5.5);
        let t1 = t0 + d;
        assert_eq!(t1.as_secs(), 15.5);
        assert_eq!(t1.since(t0), d);
    }

    #[test]
    fn duration_constructors() {
        assert_eq!(SimDuration::from_mins(15.0).as_secs(), 900.0);
        assert_eq!(SimDuration::from_hours(2.0).as_secs(), 7200.0);
        assert_eq!(SimDuration::from_hours(1.0).as_mins(), 60.0);
    }

    #[test]
    #[should_panic(expected = "finite and non-negative")]
    fn negative_duration_rejected() {
        let _ = SimDuration::from_secs(-1.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        let _ = SimTime::from_secs(f64::NAN);
    }

    #[test]
    fn saturating_ops_clamp() {
        let t0 = SimTime::from_secs(5.0);
        let t1 = SimTime::from_secs(3.0);
        assert_eq!(t1.saturating_since(t0), SimDuration::ZERO);
        let d1 = SimDuration::from_secs(2.0);
        let d2 = SimDuration::from_secs(3.0);
        assert_eq!(d1.saturating_sub(d2), SimDuration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let mut ts = [
            SimTime::from_secs(3.0),
            SimTime::from_secs(1.0),
            SimTime::from_secs(2.0),
        ];
        ts.sort();
        assert_eq!(ts[0].as_secs(), 1.0);
        assert_eq!(ts[2].as_secs(), 3.0);
    }

    #[test]
    fn duration_scaling() {
        let d = SimDuration::from_secs(10.0);
        assert_eq!((d * 2.0).as_secs(), 20.0);
        assert_eq!((d / 4.0).as_secs(), 2.5);
        assert_eq!(d / SimDuration::from_secs(5.0), 2.0);
    }

    #[test]
    fn sum_of_durations() {
        let total: SimDuration = (1..=4).map(|i| SimDuration::from_secs(i as f64)).sum();
        assert_eq!(total.as_secs(), 10.0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn duration_sub_underflow_panics() {
        let _ = SimDuration::from_secs(1.0) - SimDuration::from_secs(2.0);
    }

    #[test]
    fn min_max_helpers() {
        let a = SimTime::from_secs(1.0);
        let b = SimTime::from_secs(2.0);
        assert_eq!(a.max(b), b);
        assert_eq!(a.min(b), a);
        let da = SimDuration::from_secs(1.0);
        let db = SimDuration::from_secs(2.0);
        assert_eq!(da.max(db), db);
        assert_eq!(da.min(db), da);
    }
}
