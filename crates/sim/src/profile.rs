//! Engine self-profiling: wall-time attribution for the simulator itself.
//!
//! The tracer and metrics registry observe the *simulated* system; this
//! module observes the *simulator*. A [`Profiler`] attached to
//! [`crate::Simulation`] records, per label, how much host wall time was
//! spent exclusively inside that scope — "exclusively" meaning time inside
//! child scopes is subtracted, so the per-label exclusive times tile the
//! wall clock of the outermost scope with no double counting.
//!
//! The cost model matches [`crate::trace::Tracer`]: a disabled profiler is
//! one branch per scope (no clock read, no allocation), and attaching one
//! is strictly passive — no events scheduled, no RNG draws — so a profiled
//! run produces bit-identical journals and traces to an unprofiled one.
//!
//! Scopes nest via RAII guards and must be dropped in LIFO order, which
//! Rust's scoping gives for free:
//!
//! ```
//! use aimes_sim::profile::Profiler;
//!
//! let prof = Profiler::new();
//! {
//!     let _outer = prof.scope("harness");
//!     {
//!         let _inner = prof.scope("engine.dispatch");
//!     } // inner's elapsed time is credited to "engine.dispatch" and
//!       // subtracted from "harness"'s exclusive total
//! }
//! let report = prof.report();
//! assert_eq!(report.labels.len(), 2);
//! ```
//!
//! The engine additionally pushes its always-on queue-health counters
//! ([`EngineStats`]) into the profiler at end of run, so one report carries
//! both time attribution and queue-pressure data.

use crate::telemetry::LogHistogram;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Instant;

/// Power-of-two tick buckets per label: index `i >= 1` holds calls whose
/// exclusive tick count is in `(2^(i-1), 2^i]`; index 0 holds 0–1 ticks.
/// 65 buckets cover the full `u64` tick range.
const TICK_BUCKETS: usize = 65;

/// A raw monotonic cycle counter for the hot path. On x86-64 this is one
/// `rdtsc` (~a few ns, no syscall, invariant rate on every CPU this
/// project targets); elsewhere it falls back to nanoseconds from a
/// process-wide epoch. Tick durations are converted to seconds only at
/// [`Profiler::report`] time, using the rate calibrated at
/// [`Profiler::new`].
#[inline(always)]
fn now_ticks() -> u64 {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: RDTSC is unprivileged and universally available on x86-64.
    unsafe {
        core::arch::x86_64::_rdtsc()
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::sync::OnceLock;
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Measure the tick rate against the OS monotonic clock over a short
/// busy-wait. 100 µs keeps clock granularity under ~0.1% of the window
/// while costing effectively nothing at run scale.
fn calibrate_secs_per_tick() -> f64 {
    let t0 = Instant::now();
    let c0 = now_ticks();
    while t0.elapsed() < std::time::Duration::from_micros(100) {
        std::hint::spin_loop();
    }
    let dt = t0.elapsed().as_secs_f64();
    let dc = now_ticks().saturating_sub(c0);
    if dc == 0 {
        // Tick source stuck (emulators); fall back to nanosecond ticks.
        return 1e-9;
    }
    dt / dc as f64
}

/// `ceil(log2(ticks))` as a bucket index, matching the bucket ranges in
/// [`TICK_BUCKETS`]'s doc: one `leading_zeros`, no floating point.
#[inline(always)]
fn tick_bucket(ticks: u64) -> usize {
    if ticks <= 1 {
        return 0;
    }
    (64 - (ticks - 1).leading_zeros()) as usize
}

/// Always-on engine health counters, snapshotted from the event queue.
///
/// These are maintained unconditionally (plain integer arithmetic in the
/// schedule/cancel paths) and are deterministic: two runs with the same
/// seed produce identical `EngineStats` regardless of host timing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events dispatched by the run loop.
    pub events_processed: u64,
    /// Events ever scheduled (fired, pending, or cancelled).
    pub events_scheduled: u64,
    /// Successful cancellations.
    pub events_cancelled: u64,
    /// High-water mark of live pending events.
    pub pending_events_hwm: u64,
    /// Eager heap compactions triggered by cancellation pressure.
    pub compactions: u64,
}

impl EngineStats {
    /// Fold another run's counters into this one. Sums everywhere except
    /// the high-water mark, which takes the max across runs.
    pub fn merge(&mut self, other: &EngineStats) {
        self.events_processed += other.events_processed;
        self.events_scheduled += other.events_scheduled;
        self.events_cancelled += other.events_cancelled;
        self.pending_events_hwm = self.pending_events_hwm.max(other.pending_events_hwm);
        self.compactions += other.compactions;
    }
}

/// Pre-interned label handle: lets hot paths skip the name lookup.
///
/// Only valid with the profiler that issued it (the engine interns its
/// dispatch label once at attach time).
#[derive(Clone, Copy, Debug, Default)]
pub struct ProfileLabel(usize);

struct Frame {
    slot: usize,
    /// Ticks spent in already-closed child scopes of this frame.
    child_ticks: u64,
}

/// Per-label accumulation, entirely in integer ticks: the hot path does
/// one subtraction, one `leading_zeros`, and four adds. Conversion to
/// seconds and the per-call microsecond histogram happen once, at
/// [`Profiler::report`].
struct LabelStat {
    label: &'static str,
    count: u64,
    exclusive_ticks: u64,
    /// Per-call exclusive ticks, power-of-two bucketed: counts and tick
    /// sums per bucket, so the report can place each bucket's mass at
    /// its true average (keeping the converted histogram's mean exact).
    bucket_counts: [u64; TICK_BUCKETS],
    bucket_ticks: [u64; TICK_BUCKETS],
}

impl LabelStat {
    fn new(label: &'static str) -> Self {
        LabelStat {
            label,
            count: 0,
            exclusive_ticks: 0,
            bucket_counts: [0; TICK_BUCKETS],
            bucket_ticks: [0; TICK_BUCKETS],
        }
    }
}

struct ProfInner {
    stack: Vec<Frame>,
    slots: HashMap<&'static str, usize>,
    stats: Vec<LabelStat>,
    engine: EngineStats,
    /// Tick-to-seconds rate measured once at construction.
    secs_per_tick: f64,
}

/// Cheaply cloneable handle to shared self-profiling state.
///
/// Deliberately `!Send` (like the run journal): a profiler belongs to one
/// single-threaded run. Only the plain-data [`ProfileReport`] extracted at
/// end of run crosses thread boundaries in parallel campaigns.
#[derive(Clone, Default)]
pub struct Profiler {
    inner: Option<Rc<RefCell<ProfInner>>>,
}

impl Profiler {
    /// A recording profiler. Construction calibrates the tick clock
    /// against the OS monotonic clock (~100 µs, once per profiler).
    pub fn new() -> Self {
        Profiler {
            inner: Some(Rc::new(RefCell::new(ProfInner {
                stack: Vec::with_capacity(16),
                slots: HashMap::new(),
                stats: Vec::new(),
                engine: EngineStats::default(),
                secs_per_tick: calibrate_secs_per_tick(),
            }))),
        }
    }

    /// A disabled profiler: every call is a single branch.
    pub fn disabled() -> Self {
        Profiler { inner: None }
    }

    /// True when this profiler records.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Intern `name`, returning a handle that skips the lookup on
    /// [`Profiler::enter`]. On a disabled profiler the handle is inert.
    pub fn label(&self, name: &'static str) -> ProfileLabel {
        match &self.inner {
            Some(rc) => ProfileLabel(Self::intern(&mut rc.borrow_mut(), name)),
            None => ProfileLabel(0),
        }
    }

    fn intern(inner: &mut ProfInner, name: &'static str) -> usize {
        if let Some(&slot) = inner.slots.get(name) {
            return slot;
        }
        let slot = inner.stats.len();
        inner.stats.push(LabelStat::new(name));
        inner.slots.insert(name, slot);
        slot
    }

    /// Open a scope for `name`; time accrues to it until the guard drops.
    #[inline]
    pub fn scope(&self, name: &'static str) -> ProfileGuard {
        match &self.inner {
            Some(rc) => {
                let slot = Self::intern(&mut rc.borrow_mut(), name);
                self.push(rc, slot)
            }
            None => ProfileGuard { active: None },
        }
    }

    /// Open a scope for a pre-interned label (hot-path variant of
    /// [`Profiler::scope`]).
    #[inline]
    pub fn enter(&self, label: ProfileLabel) -> ProfileGuard {
        match &self.inner {
            Some(rc) => self.push(rc, label.0),
            None => ProfileGuard { active: None },
        }
    }

    #[inline]
    fn push(&self, rc: &Rc<RefCell<ProfInner>>, slot: usize) -> ProfileGuard {
        rc.borrow_mut().stack.push(Frame {
            slot,
            child_ticks: 0,
        });
        // Read the clock last so guard setup is not billed to the scope.
        ProfileGuard {
            active: Some((rc.clone(), now_ticks())),
        }
    }

    /// Current tick reading, for the marked hot path below.
    #[inline]
    pub(crate) fn mark(&self) -> u64 {
        now_ticks()
    }

    /// Open the run loop's persistent root frame for `label` without
    /// reading the clock. The batch run loops push one dispatch frame per
    /// run (not per event) and settle it after every payload via
    /// [`Profiler::finish_root`], so each dispatched event costs a single
    /// clock read and a single `RefCell` borrow. Pair with
    /// [`Profiler::close_root`] at loop exit.
    #[inline]
    pub(crate) fn open_root(&self, label: ProfileLabel) {
        if let Some(rc) = &self.inner {
            rc.borrow_mut().stack.push(Frame {
                slot: label.0,
                child_ticks: 0,
            });
        }
    }

    /// Settle the root frame for the last `n` events, crediting the time
    /// since `mark` and advancing `mark` to now. Because the end of one
    /// stride is the start of the next, a batch run loop pays one clock
    /// read per *stride* (see `PROFILE_STRIDE` in the engine), not per
    /// event — on hosts where reading the TSC costs ~20 ns that is the
    /// difference between a ~1% and a ~10% dispatch overhead. The queue
    /// work between payloads (pop, peek, compaction) is billed to the
    /// dispatch label, which is exactly where engine overhead belongs.
    ///
    /// The stride enters the histogram as `n` observations at their
    /// average, so the dispatch label's count, total, and mean are exact
    /// and only its quantile spread is smoothed; subsystem scopes use
    /// exact per-call guards. The frame stays on the stack with its
    /// child accumulator reset, ready for the next stride.
    #[inline]
    pub(crate) fn finish_root_n(&self, mark: &mut u64, n: u64) {
        if let Some(rc) = &self.inner {
            let now = now_ticks();
            let elapsed = now.saturating_sub(*mark);
            *mark = now;
            let mut guard = rc.borrow_mut();
            let inner = &mut *guard;
            let depth = inner.stack.len();
            let frame = inner
                .stack
                .last_mut()
                .expect("finish_root_n without matching open_root");
            let exclusive = elapsed.saturating_sub(frame.child_ticks);
            frame.child_ticks = 0;
            let slot = frame.slot;
            let stat = &mut inner.stats[slot];
            stat.count += n;
            stat.exclusive_ticks += exclusive;
            let bucket = tick_bucket(exclusive / n.max(1));
            stat.bucket_counts[bucket] += n;
            stat.bucket_ticks[bucket] += exclusive;
            if depth >= 2 {
                // An enclosing scope (e.g. a harness wrapping the whole
                // run) sees the stride as child time.
                inner.stack[depth - 2].child_ticks += elapsed;
            }
        }
    }

    /// Pop the frame pushed by [`Profiler::open_root`]. Per-event time
    /// was already recorded by [`Profiler::finish_root`]; the sliver
    /// between the last event and loop exit is dropped.
    #[inline]
    pub(crate) fn close_root(&self) {
        if let Some(rc) = &self.inner {
            rc.borrow_mut()
                .stack
                .pop()
                .expect("close_root without matching open_root");
        }
    }

    /// Record the engine's queue-health counters (overwrites; the counters
    /// are cumulative over the run).
    pub fn record_engine(&self, stats: EngineStats) {
        if let Some(rc) = &self.inner {
            rc.borrow_mut().engine = stats;
        }
    }

    /// Snapshot collected data, converting accumulated ticks to seconds
    /// at the calibrated rate. Each tick bucket lands in the microsecond
    /// histogram at its true average value, so the histogram's count and
    /// mean are exact and its quantiles are bucket-accurate. Labels are
    /// sorted by name so reports are deterministic regardless of
    /// first-use order.
    pub fn report(&self) -> ProfileReport {
        let mut report = ProfileReport::default();
        if let Some(rc) = &self.inner {
            let inner = rc.borrow();
            let us_per_tick = inner.secs_per_tick * 1e6;
            report.engine = inner.engine;
            report.labels = inner
                .stats
                .iter()
                .filter(|s| s.count > 0)
                .map(|s| {
                    let mut hist = LogHistogram::default();
                    for (count, ticks) in s.bucket_counts.iter().zip(s.bucket_ticks.iter()) {
                        if *count > 0 {
                            hist.observe_n(*ticks as f64 / *count as f64 * us_per_tick, *count);
                        }
                    }
                    LabelProfile {
                        label: s.label.to_string(),
                        count: s.count,
                        exclusive_secs: s.exclusive_ticks as f64 * inner.secs_per_tick,
                        hist,
                    }
                })
                .collect();
            report.labels.sort_by(|a, b| a.label.cmp(&b.label));
        }
        report
    }
}

impl std::fmt::Debug for Profiler {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Profiler")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

/// RAII scope guard issued by [`Profiler::scope`] / [`Profiler::enter`].
///
/// On drop, the scope's elapsed ticks minus its children's elapsed ticks
/// are credited to the label, and the full elapsed ticks are reported to
/// the parent frame as child time.
pub struct ProfileGuard {
    active: Option<(Rc<RefCell<ProfInner>>, u64)>,
}

impl Drop for ProfileGuard {
    #[inline]
    fn drop(&mut self) {
        if let Some((rc, start)) = self.active.take() {
            // Read the clock first so guard teardown is not billed.
            let elapsed = now_ticks().saturating_sub(start);
            let mut inner = rc.borrow_mut();
            let frame = inner
                .stack
                .pop()
                .expect("profile guard dropped with empty scope stack");
            let exclusive = elapsed.saturating_sub(frame.child_ticks);
            let stat = &mut inner.stats[frame.slot];
            stat.count += 1;
            stat.exclusive_ticks += exclusive;
            let bucket = tick_bucket(exclusive);
            stat.bucket_counts[bucket] += 1;
            stat.bucket_ticks[bucket] += exclusive;
            if let Some(parent) = inner.stack.last_mut() {
                parent.child_ticks += elapsed;
            }
        }
    }
}

/// Per-label slice of a [`ProfileReport`].
#[derive(Clone, Debug)]
pub struct LabelProfile {
    /// Scope label (`engine.dispatch`, `cluster.scheduler`, ...).
    pub label: String,
    /// Number of times the scope was entered.
    pub count: u64,
    /// Total wall seconds exclusively inside this scope (children
    /// subtracted).
    pub exclusive_secs: f64,
    /// Distribution of exclusive time per call, in microseconds.
    pub hist: LogHistogram,
}

/// Plain-data snapshot of one profiled run (or a merge of many).
///
/// Unlike [`Profiler`] this is `Send`: parallel campaign workers extract a
/// report per run and ship it to the aggregator.
#[derive(Clone, Debug, Default)]
pub struct ProfileReport {
    /// Engine queue-health counters (deterministic).
    pub engine: EngineStats,
    /// Per-label attribution, sorted by label name (timing volatile).
    pub labels: Vec<LabelProfile>,
}

impl ProfileReport {
    /// Fold another run's report into this one: counts and times add,
    /// histograms merge bucket-wise, engine counters combine per
    /// [`EngineStats::merge`].
    pub fn merge(&mut self, other: &ProfileReport) {
        self.engine.merge(&other.engine);
        for theirs in &other.labels {
            match self
                .labels
                .binary_search_by(|mine| mine.label.cmp(&theirs.label))
            {
                Ok(i) => {
                    let mine = &mut self.labels[i];
                    mine.count += theirs.count;
                    mine.exclusive_secs += theirs.exclusive_secs;
                    mine.hist.merge(&theirs.hist);
                }
                Err(i) => self.labels.insert(i, theirs.clone()),
            }
        }
    }

    /// Sum of per-label exclusive wall seconds — the profiler's view of
    /// total attributed time. With an outermost scope wrapping the run,
    /// this tiles (and therefore approximates) that scope's wall clock.
    pub fn attributed_secs(&self) -> f64 {
        self.labels.iter().map(|l| l.exclusive_secs).sum()
    }

    /// Total scope entries across all labels.
    pub fn total_calls(&self) -> u64 {
        self.labels.iter().map(|l| l.count).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;
    use std::time::Duration;

    #[test]
    fn disabled_profiler_records_nothing() {
        let prof = Profiler::disabled();
        assert!(!prof.is_enabled());
        {
            let _g = prof.scope("anything");
            let _h = prof.enter(prof.label("other"));
        }
        let report = prof.report();
        assert!(report.labels.is_empty());
        assert_eq!(report.attributed_secs(), 0.0);
    }

    #[test]
    fn exclusive_time_subtracts_children() {
        let prof = Profiler::new();
        let started = Instant::now();
        {
            let _outer = prof.scope("outer");
            sleep(Duration::from_millis(4));
            {
                let _inner = prof.scope("inner");
                sleep(Duration::from_millis(8));
            }
            sleep(Duration::from_millis(2));
        }
        let wall = started.elapsed().as_secs_f64();
        let report = prof.report();
        let get = |name: &str| {
            report
                .labels
                .iter()
                .find(|l| l.label == name)
                .unwrap_or_else(|| panic!("missing label {name}"))
        };
        let outer = get("outer");
        let inner = get("inner");
        assert_eq!(outer.count, 1);
        assert_eq!(inner.count, 1);
        // Sleeps may overshoot under load, so assert only invariants that
        // survive oversleeping: each scope covers at least its own sleep,
        // and the outer scope's exclusive time excludes the inner scope
        // entirely (inner slept >= 8 ms, so outer exclusive must fit in
        // what remains of the measured wall clock).
        assert!(
            inner.exclusive_secs >= 0.008,
            "inner={}",
            inner.exclusive_secs
        );
        assert!(
            outer.exclusive_secs >= 0.006,
            "outer={}",
            outer.exclusive_secs
        );
        assert!(
            outer.exclusive_secs <= wall - 0.008,
            "outer exclusive {} must exclude inner's 8 ms (wall {wall})",
            outer.exclusive_secs
        );
        // Exclusive times tile the outer scope's wall clock. The 1%
        // headroom covers tick-rate calibration error: attributed time
        // is ticks * calibrated rate, wall is the OS clock directly.
        let total = report.attributed_secs();
        assert!(
            total >= 0.014 && total <= wall * 1.01,
            "total={total} wall={wall}"
        );
    }

    #[test]
    fn sibling_scopes_accumulate_per_label() {
        let prof = Profiler::new();
        let label = prof.label("work");
        for _ in 0..10 {
            let _g = prof.enter(label);
        }
        let report = prof.report();
        assert_eq!(report.labels.len(), 1);
        assert_eq!(report.labels[0].count, 10);
        assert_eq!(report.labels[0].hist.count(), 10);
        assert_eq!(report.total_calls(), 10);
    }

    #[test]
    fn report_labels_sorted_and_merge_folds() {
        let prof_a = Profiler::new();
        {
            let _z = prof_a.scope("zeta");
        }
        {
            let _a = prof_a.scope("alpha");
        }
        let mut a = prof_a.report();
        assert_eq!(
            a.labels
                .iter()
                .map(|l| l.label.as_str())
                .collect::<Vec<_>>(),
            vec!["alpha", "zeta"]
        );

        let prof_b = Profiler::new();
        {
            let _m = prof_b.scope("mid");
        }
        {
            let _a = prof_b.scope("alpha");
        }
        prof_b.record_engine(EngineStats {
            events_processed: 7,
            events_scheduled: 9,
            events_cancelled: 1,
            pending_events_hwm: 5,
            compactions: 2,
        });
        a.merge(&prof_b.report());
        assert_eq!(
            a.labels
                .iter()
                .map(|l| l.label.as_str())
                .collect::<Vec<_>>(),
            vec!["alpha", "mid", "zeta"]
        );
        let alpha = &a.labels[0];
        assert_eq!(alpha.count, 2);
        assert_eq!(a.engine.events_processed, 7);
        assert_eq!(a.engine.pending_events_hwm, 5);
    }

    #[test]
    fn engine_stats_merge_sums_and_maxes() {
        let mut a = EngineStats {
            events_processed: 10,
            events_scheduled: 12,
            events_cancelled: 2,
            pending_events_hwm: 40,
            compactions: 1,
        };
        a.merge(&EngineStats {
            events_processed: 5,
            events_scheduled: 6,
            events_cancelled: 1,
            pending_events_hwm: 25,
            compactions: 0,
        });
        assert_eq!(a.events_processed, 15);
        assert_eq!(a.events_scheduled, 18);
        assert_eq!(a.events_cancelled, 3);
        assert_eq!(a.pending_events_hwm, 40, "hwm takes the max, not the sum");
        assert_eq!(a.compactions, 1);
    }
}
