//! Deterministic, forkable random-number streams.
//!
//! Every stochastic component of the simulation (background workload per
//! resource, task-duration sampling, submission jitter, ...) draws from its
//! own named stream forked from a single experiment seed. Forking is stable:
//! the stream a component receives depends only on the root seed and the
//! component's label, never on the order in which other components were
//! created. This is what makes run-to-run comparisons between execution
//! strategies meaningful — both strategies face *the same* background load.
//!
//! The generator is xoshiro256++ seeded via SplitMix64, implemented locally
//! so determinism does not depend on `rand`'s unstable cross-version stream
//! guarantees. It implements [`rand::RngCore`], so all of `rand`'s
//! `Rng` adaptors work on it.

use rand::{Error, RngCore, SeedableRng};

/// Identifier for a forked stream, derived from a textual label.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StreamId(pub u64);

impl StreamId {
    /// Derive a stream id from a label with FNV-1a (stable, dependency-free).
    pub fn from_label(label: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        StreamId(h)
    }
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// xoshiro256++ PRNG with stable label-based forking.
///
/// ```
/// use aimes_sim::SimRng;
///
/// let root = SimRng::new(7);
/// // Forks depend only on (seed, label): stable regardless of draw order.
/// let mut a = root.fork("cluster.stampede");
/// let mut b = root.fork("cluster.stampede");
/// assert_eq!(a.uniform01(), b.uniform01());
/// assert_ne!(root.fork("x").uniform01(), root.fork("y").uniform01());
/// ```
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
    root_seed: u64,
}

impl SimRng {
    /// Create the root stream for an experiment.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SimRng { s, root_seed: seed }
    }

    /// Fork a child stream identified by `label`. Stable: depends only on
    /// this stream's root seed and the label.
    pub fn fork(&self, label: &str) -> SimRng {
        let sid = StreamId::from_label(label);
        SimRng::new(self.root_seed ^ sid.0.rotate_left(17))
    }

    /// Fork a child stream identified by a label plus an index (for
    /// per-repetition or per-entity streams).
    pub fn fork_indexed(&self, label: &str, index: u64) -> SimRng {
        let sid = StreamId::from_label(label);
        SimRng::new(
            self.root_seed ^ sid.0.rotate_left(17) ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        )
    }

    /// The root seed this stream (family) was created from.
    pub fn root_seed(&self) -> u64 {
        self.root_seed
    }

    #[inline]
    fn next(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform f64 in [0, 1).
    #[inline]
    pub fn uniform01(&mut self) -> f64 {
        // 53 high bits → [0,1) with full double precision.
        (self.next() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform f64 in [lo, hi).
    #[inline]
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(hi >= lo);
        lo + (hi - lo) * self.uniform01()
    }

    /// Uniform integer in [0, n).
    #[inline]
    pub fn below(&mut self, n: u64) -> u64 {
        debug_assert!(n > 0);
        // Lemire's nearly-divisionless bounded sampling.
        let mut x = self.next();
        let mut m = (x as u128).wrapping_mul(n as u128);
        let mut l = m as u64;
        if l < n {
            let t = n.wrapping_neg() % n;
            while l < t {
                x = self.next();
                m = (x as u128).wrapping_mul(n as u128);
                l = m as u64;
            }
        }
        (m >> 64) as u64
    }

    /// Bernoulli draw with probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform01() < p
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, slice: &mut [T]) {
        let n = slice.len();
        for i in (1..n).rev() {
            let j = self.below((i + 1) as u64) as usize;
            slice.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn pick<'a, T>(&mut self, slice: &'a [T]) -> &'a T {
        assert!(!slice.is_empty(), "pick from empty slice");
        &slice[self.below(slice.len() as u64) as usize]
    }
}

impl RngCore for SimRng {
    #[inline]
    fn next_u32(&mut self) -> u32 {
        (self.next() >> 32) as u32
    }

    #[inline]
    fn next_u64(&mut self) -> u64 {
        self.next()
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

impl SeedableRng for SimRng {
    type Seed = [u8; 8];

    fn from_seed(seed: Self::Seed) -> Self {
        SimRng::new(u64::from_le_bytes(seed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    // Both globs re-export a `RngCore`; name ours explicitly.
    use rand::RngCore;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..100).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 3);
    }

    #[test]
    fn fork_is_stable_and_independent_of_draws() {
        let root = SimRng::new(7);
        let mut drained = SimRng::new(7);
        for _ in 0..100 {
            drained.next_u64();
        }
        let mut f1 = root.fork("cluster.stampede");
        let mut f2 = drained.fork("cluster.stampede");
        for _ in 0..100 {
            assert_eq!(f1.next_u64(), f2.next_u64());
        }
    }

    #[test]
    fn forks_with_different_labels_differ() {
        let root = SimRng::new(7);
        let mut a = root.fork("x");
        let mut b = root.fork("y");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn indexed_forks_differ() {
        let root = SimRng::new(7);
        let mut a = root.fork_indexed("rep", 0);
        let mut b = root.fork_indexed("rep", 1);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn uniform01_in_range_and_well_spread() {
        let mut r = SimRng::new(3);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let v = r.uniform01();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean was {mean}");
    }

    #[test]
    fn below_respects_bound() {
        let mut r = SimRng::new(9);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.below(10) as usize;
            assert!(v < 10);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SimRng::new(11);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn fill_bytes_covers_remainder() {
        let mut r = SimRng::new(13);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
    }

    proptest! {
        #[test]
        fn prop_below_in_range(seed in any::<u64>(), n in 1u64..1_000_000) {
            let mut r = SimRng::new(seed);
            for _ in 0..20 {
                prop_assert!(r.below(n) < n);
            }
        }

        #[test]
        fn prop_uniform_in_range(seed in any::<u64>(), lo in -1e6f64..1e6, width in 0.001f64..1e6) {
            let mut r = SimRng::new(seed);
            let hi = lo + width;
            for _ in 0..20 {
                let v = r.uniform(lo, hi);
                prop_assert!(v >= lo && v < hi);
            }
        }
    }
}
