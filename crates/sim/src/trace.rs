//! Structured execution traces.
//!
//! The paper's middleware is "instrumented to produce complete traces of an
//! application execution"; the entire evaluation (the TTC decomposition into
//! Tw/Tx/Ts) is computed from recorded state transitions. This module is the
//! reproduction of that instrumentation: components append
//! [`TraceEvent`]s to a shared [`Tracer`]; the analysis layer (crate
//! `aimes`) replays the trace to compute time components.

use crate::time::SimTime;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// One recorded state transition or annotation.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Virtual time at which the transition happened.
    pub time: SimTime,
    /// Component that emitted the event, e.g. `pilot.stampede.0` or
    /// `unit.00042`.
    pub component: String,
    /// Transition or annotation name, e.g. `Active`, `Executing`.
    pub event: String,
    /// Free-form detail (resource name, core count, error text, ...).
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12.3}] {} -> {} {}",
            self.time.as_secs(),
            self.component,
            self.event,
            self.detail
        )
    }
}

/// Destination for trace events. The default sink is an in-memory vector;
/// experiments export it as JSON for post-processing.
#[derive(Debug, Default)]
pub struct TraceSink {
    events: Vec<TraceEvent>,
}

impl TraceSink {
    /// All recorded events in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consume the sink, returning the events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }
}

/// Cheaply cloneable handle to a shared trace sink.
///
/// The simulation itself is single-threaded, but traces are read by the
/// (parallel) experiment harness after the run, so the sink is protected by
/// a `parking_lot::Mutex` — uncontended in practice.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    sink: Arc<Mutex<TraceSink>>,
    enabled: bool,
}

impl Tracer {
    /// A tracer that records everything.
    pub fn new() -> Self {
        Tracer {
            sink: Arc::new(Mutex::new(TraceSink::default())),
            enabled: true,
        }
    }

    /// A tracer that drops everything (for benchmarks where trace volume
    /// would distort measurements).
    pub fn disabled() -> Self {
        Tracer {
            sink: Arc::new(Mutex::new(TraceSink::default())),
            enabled: false,
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a state transition.
    #[inline]
    pub fn record(
        &self,
        time: SimTime,
        component: impl Into<String>,
        event: impl Into<String>,
        detail: impl Into<String>,
    ) {
        if !self.enabled {
            return;
        }
        self.sink.lock().events.push(TraceEvent {
            time,
            component: component.into(),
            event: event.into(),
            detail: detail.into(),
        });
    }

    /// Record a state transition, building the strings only when tracing
    /// is enabled. Hot paths pay for `record`'s arguments (typically
    /// `format!` calls) even when the tracer drops everything; this
    /// variant makes a disabled tracer genuinely zero-cost — one branch.
    #[inline]
    pub fn record_with<F>(&self, time: SimTime, f: F)
    where
        F: FnOnce() -> (String, String, String),
    {
        if !self.enabled {
            return;
        }
        let (component, event, detail) = f();
        self.sink.lock().events.push(TraceEvent {
            time,
            component,
            event,
            detail,
        });
    }

    /// Snapshot of all events recorded so far.
    pub fn snapshot(&self) -> Vec<TraceEvent> {
        self.sink.lock().events.clone()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.sink.lock().events.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events for one component, in order.
    pub fn for_component(&self, component: &str) -> Vec<TraceEvent> {
        self.sink
            .lock()
            .events
            .iter()
            .filter(|e| e.component == component)
            .cloned()
            .collect()
    }

    /// First occurrence time of `event` on `component`, if any.
    pub fn first_time_of(&self, component: &str, event: &str) -> Option<SimTime> {
        self.sink
            .lock()
            .events
            .iter()
            .find(|e| e.component == component && e.event == event)
            .map(|e| e.time)
    }

    /// Serialize the whole trace as pretty JSON.
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(&self.sink.lock().events).expect("trace serializes")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn records_in_order() {
        let tr = Tracer::new();
        tr.record(t(1.0), "pilot.0", "Launching", "");
        tr.record(t(5.0), "pilot.0", "Active", "stampede");
        let evs = tr.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].event, "Launching");
        assert_eq!(evs[1].event, "Active");
        assert_eq!(evs[1].detail, "stampede");
    }

    #[test]
    fn disabled_tracer_drops_events() {
        let tr = Tracer::disabled();
        tr.record(t(1.0), "x", "y", "");
        assert!(tr.is_empty());
        assert!(!tr.is_enabled());
    }

    #[test]
    fn component_filter() {
        let tr = Tracer::new();
        tr.record(t(1.0), "a", "e1", "");
        tr.record(t(2.0), "b", "e2", "");
        tr.record(t(3.0), "a", "e3", "");
        let a = tr.for_component("a");
        assert_eq!(a.len(), 2);
        assert_eq!(a[1].event, "e3");
    }

    #[test]
    fn first_time_of_finds_earliest() {
        let tr = Tracer::new();
        tr.record(t(1.0), "u", "Executing", "");
        tr.record(t(4.0), "u", "Executing", "");
        assert_eq!(tr.first_time_of("u", "Executing"), Some(t(1.0)));
        assert_eq!(tr.first_time_of("u", "Missing"), None);
    }

    #[test]
    fn clones_share_sink() {
        let tr = Tracer::new();
        let tr2 = tr.clone();
        tr2.record(t(1.0), "x", "y", "");
        assert_eq!(tr.len(), 1);
    }

    #[test]
    fn json_roundtrip() {
        let tr = Tracer::new();
        tr.record(t(1.5), "pilot.0", "Active", "gordon");
        let json = tr.to_json();
        let back: Vec<TraceEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tr.snapshot());
    }

    #[test]
    fn display_format_is_stable() {
        let ev = TraceEvent {
            time: t(12.0),
            component: "unit.1".into(),
            event: "Done".into(),
            detail: "".into(),
        };
        let s = format!("{ev}");
        assert!(s.contains("unit.1"));
        assert!(s.contains("Done"));
    }
}
