//! Structured execution traces.
//!
//! The paper's middleware is "instrumented to produce complete traces of an
//! application execution"; the entire evaluation (the TTC decomposition into
//! Tw/Tx/Ts) is computed from recorded state transitions. This module is the
//! reproduction of that instrumentation: components append typed
//! [`TraceEvent`]s to a shared [`Tracer`]; the analysis layer (crate
//! `aimes`) replays the trace to compute time components.
//!
//! Events are typed, not stringly: the emitting component is interned to a
//! [`ComponentId`] and the transition is a [`TraceKind`] covering the
//! pilot/unit/job/saga/detector state machines. The legacy wire shape — a
//! `{time, component, event, detail}` object with string fields — is
//! preserved by [`TraceRecord`], which every read API resolves to, so JSON
//! dumps and string comparisons made by downstream consumers are unchanged.

use crate::time::SimTime;
use parking_lot::Mutex;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::io;
use std::sync::Arc;

/// Interned identifier of a trace-emitting component (e.g. `pilot.0`,
/// `cluster.stampede.17`). Names are interned per [`TraceSink`]; ids are
/// only meaningful against the sink that produced them.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ComponentId(u32);

impl ComponentId {
    /// Position in the sink's intern table.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// Pilot state-machine phases (see `aimes-pilot`'s `PilotState`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PilotPhase {
    New,
    PendingLaunch,
    Launching,
    PendingActive,
    Active,
    Done,
    Failed,
    Canceled,
}

impl PilotPhase {
    pub fn name(self) -> &'static str {
        match self {
            PilotPhase::New => "New",
            PilotPhase::PendingLaunch => "PendingLaunch",
            PilotPhase::Launching => "Launching",
            PilotPhase::PendingActive => "PendingActive",
            PilotPhase::Active => "Active",
            PilotPhase::Done => "Done",
            PilotPhase::Failed => "Failed",
            PilotPhase::Canceled => "Canceled",
        }
    }
}

/// Compute-unit state-machine phases plus the restart/fault annotations the
/// unit manager emits around them.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnitPhase {
    New,
    PendingExecution,
    StagingInput,
    Executing,
    StagingOutput,
    Done,
    Failed,
    Canceled,
    Restart,
    Fault,
}

impl UnitPhase {
    pub fn name(self) -> &'static str {
        match self {
            UnitPhase::New => "New",
            UnitPhase::PendingExecution => "PendingExecution",
            UnitPhase::StagingInput => "StagingInput",
            UnitPhase::Executing => "Executing",
            UnitPhase::StagingOutput => "StagingOutput",
            UnitPhase::Done => "Done",
            UnitPhase::Failed => "Failed",
            UnitPhase::Canceled => "Canceled",
            UnitPhase::Restart => "Restart",
            UnitPhase::Fault => "Fault",
        }
    }
}

/// Cluster batch-job lifecycle (see `aimes-cluster`'s `JobState`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobPhase {
    Queued,
    Running,
    Completed,
    Killed,
    Cancelled,
}

impl JobPhase {
    pub fn name(self) -> &'static str {
        match self {
            JobPhase::Queued => "Queued",
            JobPhase::Running => "Running",
            JobPhase::Completed => "Completed",
            JobPhase::Killed => "Killed",
            JobPhase::Cancelled => "Cancelled",
        }
    }
}

/// SAGA job-API phases plus the resilience annotations (retries, breaker).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SagaPhase {
    New,
    Pending,
    Running,
    Done,
    Failed,
    Canceled,
    RetrySubmission,
    RetryCancel,
    RetryStatusQuery,
    CancelAbandoned,
    BreakerTrip,
}

impl SagaPhase {
    pub fn name(self) -> &'static str {
        match self {
            SagaPhase::New => "New",
            SagaPhase::Pending => "Pending",
            SagaPhase::Running => "Running",
            SagaPhase::Done => "Done",
            SagaPhase::Failed => "Failed",
            SagaPhase::Canceled => "Canceled",
            SagaPhase::RetrySubmission => "RetrySubmission",
            SagaPhase::RetryCancel => "RetryCancel",
            SagaPhase::RetryStatusQuery => "RetryStatusQuery",
            SagaPhase::CancelAbandoned => "CancelAbandoned",
            SagaPhase::BreakerTrip => "BreakerTrip",
        }
    }
}

/// Failure-detector verdicts and heartbeat-path annotations.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum DetectorPhase {
    WentSilent,
    StaleHeartbeat,
    Suspected,
    SuspicionCleared,
    StatusConfirmedDead,
    DeclaredDead,
}

impl DetectorPhase {
    pub fn name(self) -> &'static str {
        match self {
            DetectorPhase::WentSilent => "WentSilent",
            DetectorPhase::StaleHeartbeat => "StaleHeartbeat",
            DetectorPhase::Suspected => "Suspected",
            DetectorPhase::SuspicionCleared => "SuspicionCleared",
            DetectorPhase::StatusConfirmedDead => "StatusConfirmedDead",
            DetectorPhase::DeclaredDead => "DeclaredDead",
        }
    }
}

/// Resource-level availability events emitted by the cluster layer.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ResourcePhase {
    Outage,
    Drain,
    Decommission,
}

impl ResourcePhase {
    pub fn name(self) -> &'static str {
        match self {
            ResourcePhase::Outage => "Outage",
            ResourcePhase::Drain => "Drain",
            ResourcePhase::Decommission => "Decommission",
        }
    }
}

/// Orchestration decisions made by the managers and the middleware.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ManagerPhase {
    Blacklist,
    RecoveryExhausted,
    ScheduleReplacement,
    UnitsStranded,
    AllDone,
    Replan,
    ReplanFailed,
    Reinforce,
}

impl ManagerPhase {
    pub fn name(self) -> &'static str {
        match self {
            ManagerPhase::Blacklist => "Blacklist",
            ManagerPhase::RecoveryExhausted => "RecoveryExhausted",
            ManagerPhase::ScheduleReplacement => "ScheduleReplacement",
            ManagerPhase::UnitsStranded => "UnitsStranded",
            ManagerPhase::AllDone => "AllDone",
            ManagerPhase::Replan => "Replan",
            ManagerPhase::ReplanFailed => "ReplanFailed",
            ManagerPhase::Reinforce => "Reinforce",
        }
    }
}

/// A typed transition or annotation. Every state machine in the stack has
/// its own phase enum; [`TraceKind::Mark`] covers ad-hoc annotations (and
/// keeps free-form literals usable in tests).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceKind {
    Pilot(PilotPhase),
    Unit(UnitPhase),
    Job(JobPhase),
    Saga(SagaPhase),
    Detector(DetectorPhase),
    Resource(ResourcePhase),
    Manager(ManagerPhase),
    Mark(&'static str),
}

impl TraceKind {
    /// The event name as it appears on the wire — byte-identical to the
    /// strings the pre-typed tracer recorded.
    pub fn name(self) -> &'static str {
        match self {
            TraceKind::Pilot(p) => p.name(),
            TraceKind::Unit(p) => p.name(),
            TraceKind::Job(p) => p.name(),
            TraceKind::Saga(p) => p.name(),
            TraceKind::Detector(p) => p.name(),
            TraceKind::Resource(p) => p.name(),
            TraceKind::Manager(p) => p.name(),
            TraceKind::Mark(s) => s,
        }
    }

    /// Which state machine the event belongs to (exporters group by this).
    pub fn category(self) -> &'static str {
        match self {
            TraceKind::Pilot(_) => "pilot",
            TraceKind::Unit(_) => "unit",
            TraceKind::Job(_) => "job",
            TraceKind::Saga(_) => "saga",
            TraceKind::Detector(_) => "detector",
            TraceKind::Resource(_) => "resource",
            TraceKind::Manager(_) => "manager",
            TraceKind::Mark(_) => "mark",
        }
    }
}

impl From<&'static str> for TraceKind {
    fn from(s: &'static str) -> Self {
        TraceKind::Mark(s)
    }
}

impl fmt::Display for TraceKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One recorded transition, as stored: component interned, kind typed.
#[derive(Clone, Debug, PartialEq)]
pub struct TraceEvent {
    /// Virtual time at which the transition happened.
    pub time: SimTime,
    /// Interned component (resolve via the owning [`TraceSink`]).
    pub component: ComponentId,
    /// Typed transition or annotation.
    pub kind: TraceKind,
    /// Free-form detail (resource name, core count, error text, ...).
    pub detail: String,
}

/// One resolved trace event in the legacy wire shape: string component and
/// event names. This is what [`Tracer::snapshot`] returns and what the JSON
/// exporters serialize, so downstream string comparisons keep working.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct TraceRecord {
    pub time: SimTime,
    /// Component that emitted the event, e.g. `pilot.0` or `unit.00042`.
    pub component: String,
    /// Transition or annotation name, e.g. `Active`, `Executing`.
    pub event: String,
    pub detail: String,
}

impl fmt::Display for TraceRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{:>12.3}] {} -> {} {}",
            self.time.as_secs(),
            self.component,
            self.event,
            self.detail
        )
    }
}

/// Destination for trace events: the event vector plus the component
/// intern table. Experiments export it as JSON for post-processing.
#[derive(Debug, Default)]
pub struct TraceSink {
    events: Vec<TraceEvent>,
    names: Vec<String>,
    index: HashMap<String, ComponentId>,
}

impl TraceSink {
    /// Intern a component name, returning its stable id.
    pub fn intern(&mut self, name: String) -> ComponentId {
        if let Some(&id) = self.index.get(&name) {
            return id;
        }
        let id = ComponentId(self.names.len() as u32);
        self.names.push(name.clone());
        self.index.insert(name, id);
        id
    }

    /// Id of an already-interned component name, if any.
    pub fn lookup(&self, name: &str) -> Option<ComponentId> {
        self.index.get(name).copied()
    }

    /// Name behind an interned id. Panics on a foreign id.
    pub fn component_name(&self, id: ComponentId) -> &str {
        &self.names[id.index()]
    }

    /// All recorded events in emission order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Consume the sink, returning the events.
    pub fn into_events(self) -> Vec<TraceEvent> {
        self.events
    }

    /// Resolve a stored event to the legacy wire shape.
    pub fn resolve(&self, event: &TraceEvent) -> TraceRecord {
        TraceRecord {
            time: event.time,
            component: self.component_name(event.component).to_string(),
            event: event.kind.name().to_string(),
            detail: event.detail.clone(),
        }
    }

    fn push(&mut self, time: SimTime, component: String, kind: TraceKind, detail: String) {
        let component = self.intern(component);
        self.events.push(TraceEvent {
            time,
            component,
            kind,
            detail,
        });
    }
}

/// Cheaply cloneable handle to a shared trace sink.
///
/// The simulation itself is single-threaded, but traces are read by the
/// (parallel) experiment harness after the run, so the sink is protected by
/// a `parking_lot::Mutex` — uncontended in practice.
#[derive(Clone, Debug, Default)]
pub struct Tracer {
    sink: Arc<Mutex<TraceSink>>,
    enabled: bool,
}

impl Tracer {
    /// A tracer that records everything.
    pub fn new() -> Self {
        Tracer {
            sink: Arc::new(Mutex::new(TraceSink::default())),
            enabled: true,
        }
    }

    /// A tracer that drops everything (for benchmarks where trace volume
    /// would distort measurements).
    pub fn disabled() -> Self {
        Tracer {
            sink: Arc::new(Mutex::new(TraceSink::default())),
            enabled: false,
        }
    }

    /// Whether events are being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Record a state transition.
    #[inline]
    pub fn record(
        &self,
        time: SimTime,
        component: impl Into<String>,
        kind: impl Into<TraceKind>,
        detail: impl Into<String>,
    ) {
        if !self.enabled {
            return;
        }
        self.sink
            .lock()
            .push(time, component.into(), kind.into(), detail.into());
    }

    /// Record a state transition, building the component/detail strings
    /// only when tracing is enabled. Hot paths pay for `record`'s arguments
    /// (typically `format!` calls) even when the tracer drops everything;
    /// this variant makes a disabled tracer genuinely zero-cost — one
    /// branch.
    #[inline]
    pub fn record_with<F>(&self, time: SimTime, f: F)
    where
        F: FnOnce() -> (String, TraceKind, String),
    {
        if !self.enabled {
            return;
        }
        let (component, kind, detail) = f();
        self.sink.lock().push(time, component, kind, detail);
    }

    /// Snapshot of all events recorded so far, resolved to the legacy wire
    /// shape.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let sink = self.sink.lock();
        sink.events.iter().map(|e| sink.resolve(e)).collect()
    }

    /// Number of events recorded so far.
    pub fn len(&self) -> usize {
        self.sink.lock().events.len()
    }

    /// True if nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events for one component, in order.
    pub fn for_component(&self, component: &str) -> Vec<TraceRecord> {
        let sink = self.sink.lock();
        let Some(id) = sink.lookup(component) else {
            return Vec::new();
        };
        sink.events
            .iter()
            .filter(|e| e.component == id)
            .map(|e| sink.resolve(e))
            .collect()
    }

    /// First occurrence time of `event` on `component`, if any.
    pub fn first_time_of(&self, component: &str, event: &str) -> Option<SimTime> {
        let sink = self.sink.lock();
        let id = sink.lookup(component)?;
        sink.events
            .iter()
            .find(|e| e.component == id && e.kind.name() == event)
            .map(|e| e.time)
    }

    /// Stream the whole trace as a JSON array of [`TraceRecord`]s, one
    /// event per line. Unlike the old `to_json`, this never materializes
    /// the serialized trace as a single in-memory string and surfaces
    /// write failures instead of panicking.
    pub fn write_json<W: io::Write>(&self, out: &mut W) -> io::Result<()> {
        let sink = self.sink.lock();
        out.write_all(b"[")?;
        for (i, event) in sink.events.iter().enumerate() {
            let line = serde_json::to_string(&sink.resolve(event))
                .map_err(|e| io::Error::new(io::ErrorKind::InvalidData, e.to_string()))?;
            if i > 0 {
                out.write_all(b",")?;
            }
            out.write_all(b"\n  ")?;
            out.write_all(line.as_bytes())?;
        }
        out.write_all(b"\n]\n")
    }

    /// Serialize the whole trace as JSON (convenience wrapper over
    /// [`Tracer::write_json`]).
    pub fn to_json(&self) -> String {
        let mut buf = Vec::new();
        self.write_json(&mut buf)
            .expect("writing to a Vec cannot fail");
        String::from_utf8(buf).expect("serialized JSON is UTF-8")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn records_in_order() {
        let tr = Tracer::new();
        tr.record(
            t(1.0),
            "pilot.0",
            TraceKind::Pilot(PilotPhase::Launching),
            "",
        );
        tr.record(
            t(5.0),
            "pilot.0",
            TraceKind::Pilot(PilotPhase::Active),
            "stampede",
        );
        let evs = tr.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].event, "Launching");
        assert_eq!(evs[1].event, "Active");
        assert_eq!(evs[1].detail, "stampede");
    }

    #[test]
    fn disabled_tracer_drops_events() {
        let tr = Tracer::disabled();
        tr.record(t(1.0), "x", "y", "");
        assert!(tr.is_empty());
        assert!(!tr.is_enabled());
    }

    #[test]
    fn component_interning_is_stable() {
        let tr = Tracer::new();
        tr.record(t(1.0), "a", "e1", "");
        tr.record(t(2.0), "b", "e2", "");
        tr.record(t(3.0), "a", "e3", "");
        let sink = tr.sink.lock();
        assert_eq!(sink.events()[0].component, sink.events()[2].component);
        assert_ne!(sink.events()[0].component, sink.events()[1].component);
        assert_eq!(sink.component_name(sink.events()[1].component), "b");
    }

    #[test]
    fn component_filter() {
        let tr = Tracer::new();
        tr.record(t(1.0), "a", "e1", "");
        tr.record(t(2.0), "b", "e2", "");
        tr.record(t(3.0), "a", "e3", "");
        let a = tr.for_component("a");
        assert_eq!(a.len(), 2);
        assert_eq!(a[1].event, "e3");
        assert!(tr.for_component("missing").is_empty());
    }

    #[test]
    fn first_time_of_finds_earliest() {
        let tr = Tracer::new();
        tr.record(t(1.0), "u", TraceKind::Unit(UnitPhase::Executing), "");
        tr.record(t(4.0), "u", TraceKind::Unit(UnitPhase::Executing), "");
        assert_eq!(tr.first_time_of("u", "Executing"), Some(t(1.0)));
        assert_eq!(tr.first_time_of("u", "Missing"), None);
    }

    #[test]
    fn clones_share_sink() {
        let tr = Tracer::new();
        let tr2 = tr.clone();
        tr2.record(t(1.0), "x", "y", "");
        assert_eq!(tr.len(), 1);
    }

    #[test]
    fn json_roundtrip() {
        let tr = Tracer::new();
        tr.record(
            t(1.5),
            "pilot.0",
            TraceKind::Pilot(PilotPhase::Active),
            "gordon",
        );
        let json = tr.to_json();
        let back: Vec<TraceRecord> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, tr.snapshot());
    }

    #[test]
    fn write_json_streams_valid_empty_array() {
        let tr = Tracer::new();
        let mut buf = Vec::new();
        tr.write_json(&mut buf).unwrap();
        let back: Vec<TraceRecord> =
            serde_json::from_str(std::str::from_utf8(&buf).unwrap()).unwrap();
        assert!(back.is_empty());
    }

    #[test]
    fn kind_names_match_legacy_strings() {
        assert_eq!(
            TraceKind::Pilot(PilotPhase::PendingLaunch).name(),
            "PendingLaunch"
        );
        assert_eq!(
            TraceKind::Unit(UnitPhase::StagingOutput).name(),
            "StagingOutput"
        );
        assert_eq!(TraceKind::Job(JobPhase::Cancelled).name(), "Cancelled");
        assert_eq!(
            TraceKind::Saga(SagaPhase::RetrySubmission).name(),
            "RetrySubmission"
        );
        assert_eq!(
            TraceKind::Detector(DetectorPhase::DeclaredDead).name(),
            "DeclaredDead"
        );
        assert_eq!(
            TraceKind::Manager(ManagerPhase::ReplanFailed).name(),
            "ReplanFailed"
        );
        assert_eq!(TraceKind::from("ad-hoc").name(), "ad-hoc");
        assert_eq!(
            TraceKind::Detector(DetectorPhase::Suspected).category(),
            "detector"
        );
    }

    #[test]
    fn display_format_is_stable() {
        let rec = TraceRecord {
            time: t(12.0),
            component: "unit.1".into(),
            event: "Done".into(),
            detail: "".into(),
        };
        let s = format!("{rec}");
        assert!(s.contains("unit.1"));
        assert!(s.contains("Done"));
    }
}
