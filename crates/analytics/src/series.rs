//! Concurrency and core-utilization time-series derived purely from the
//! reconstructed timelines — no metrics registry involved, so these series
//! cross-validate PR 4's gauge timelines instead of restating them.

use crate::timeline::{PilotPhase, SessionTimelines, UnitPhase};
use serde::{Deserialize, Serialize};

/// One point of a step function over simulated time: the value holds from
/// `t_secs` until the next point.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct Point {
    pub t_secs: f64,
    pub value: f64,
}

/// A named step series.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StepSeries {
    pub name: String,
    pub points: Vec<Point>,
}

impl StepSeries {
    /// Peak value over the series (0 for an empty series).
    pub fn peak(&self) -> f64 {
        self.points.iter().map(|p| p.value).fold(0.0, f64::max)
    }

    /// Time-weighted integral of the step function up to `horizon`:
    /// value × seconds summed over every step.
    pub fn integral(&self, horizon: f64) -> f64 {
        let mut total = 0.0;
        for (i, p) in self.points.iter().enumerate() {
            let end = self
                .points
                .get(i + 1)
                .map(|n| n.t_secs)
                .unwrap_or(horizon)
                .min(horizon);
            if end > p.t_secs {
                total += p.value * (end - p.t_secs);
            }
        }
        total
    }

    /// The step value at time `t` (0 before the first point).
    pub fn value_at(&self, t: f64) -> f64 {
        self.points
            .iter()
            .take_while(|p| p.t_secs <= t)
            .last()
            .map(|p| p.value)
            .unwrap_or(0.0)
    }
}

/// Build a step series from `(time, delta)` edges. Edges at the same time
/// coalesce into one point; runs of equal values collapse.
fn from_deltas(name: &str, mut edges: Vec<(f64, f64)>) -> StepSeries {
    edges.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
    let mut points: Vec<Point> = Vec::new();
    let mut value = 0.0;
    let mut i = 0;
    while i < edges.len() {
        let t = edges[i].0;
        while i < edges.len() && edges[i].0 == t {
            value += edges[i].1;
            i += 1;
        }
        match points.last_mut() {
            Some(last) if last.value == value => {}
            Some(last) if last.t_secs == t => last.value = value,
            _ => points.push(Point { t_secs: t, value }),
        }
    }
    StepSeries {
        name: name.into(),
        points,
    }
}

/// Number of units in `Executing` over time.
pub fn executing_units(tl: &SessionTimelines) -> StepSeries {
    let mut edges = Vec::new();
    for u in tl.units.values() {
        for iv in u
            .intervals
            .iter()
            .filter(|iv| iv.phase == UnitPhase::Executing)
        {
            edges.push((iv.start_secs, 1.0));
            edges.push((iv.end_secs, -1.0));
        }
    }
    from_deltas("units.executing", edges)
}

/// Cores occupied by `Executing` units over time.
pub fn busy_cores(tl: &SessionTimelines) -> StepSeries {
    let mut edges = Vec::new();
    for u in tl.units.values() {
        let cores = f64::from(u.cores.max(1));
        for iv in u
            .intervals
            .iter()
            .filter(|iv| iv.phase == UnitPhase::Executing)
        {
            edges.push((iv.start_secs, cores));
            edges.push((iv.end_secs, -cores));
        }
    }
    from_deltas("units.busy_cores", edges)
}

/// Cores held by `Active` pilots over time — the capacity the application
/// is paying for at each instant.
pub fn active_pilot_cores(tl: &SessionTimelines) -> StepSeries {
    let mut edges = Vec::new();
    for p in tl.pilots.values() {
        let cores = f64::from(p.cores.max(1));
        for iv in p
            .intervals
            .iter()
            .filter(|iv| iv.phase == PilotPhase::Active)
        {
            edges.push((iv.start_secs, cores));
            edges.push((iv.end_secs, -cores));
        }
    }
    from_deltas("pilots.active_cores", edges)
}

/// Mean core-utilization while any pilot was active: the ratio of the
/// busy-core integral to the active-core integral (0 when no pilot ever
/// activated).
pub fn mean_utilization(tl: &SessionTimelines) -> f64 {
    let busy = busy_cores(tl).integral(tl.horizon);
    let active = active_pilot_cores(tl).integral(tl.horizon);
    if active > 0.0 {
        busy / active
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deltas_coalesce_and_collapse() {
        let s = from_deltas(
            "x",
            vec![(0.0, 1.0), (0.0, 1.0), (5.0, -1.0), (5.0, 1.0), (9.0, -2.0)],
        );
        // t=5 has -1 then +1: net unchanged, so no point is emitted there.
        assert_eq!(
            s.points,
            vec![
                Point {
                    t_secs: 0.0,
                    value: 2.0
                },
                Point {
                    t_secs: 9.0,
                    value: 0.0
                },
            ]
        );
        assert_eq!(s.peak(), 2.0);
        assert!((s.integral(9.0) - 18.0).abs() < 1e-12);
        assert_eq!(s.value_at(4.0), 2.0);
        assert_eq!(s.value_at(10.0), 0.0);
    }

    #[test]
    fn integral_clamps_to_horizon() {
        let s = from_deltas("x", vec![(0.0, 3.0), (10.0, -3.0)]);
        assert!((s.integral(4.0) - 12.0).abs() < 1e-12);
    }
}
