//! Per-entity state-timeline reconstruction from the run journal.
//!
//! The journal records *transitions*; analytics needs *intervals*. This
//! module replays the journal once and materializes, for every unit and
//! pilot, the contiguous sequence of `[enter, leave)` state intervals,
//! plus the pilot-suspicion windows the failure detector opened. Two
//! reconstruction rules make the intervals well-defined:
//!
//! 1. **Implicit birth.** Entities are created in `New` before their
//!    first journaled transition, so each timeline is prefixed with a
//!    synthetic `New` interval from run start to the first transition
//!    (unless the first transition *is* into `New`).
//! 2. **Closure at the horizon.** Every interval still open when the
//!    journal ends is closed at `RunFinished` time — or, for a torn
//!    journal, at the last recorded event — so interval arithmetic never
//!    sees an open end.
//!
//! Recovery spells are tagged during replay: a transition back into
//! `PendingExecution` from an in-flight state is a restart, and the
//! intervals from there until the unit next reaches `Executing` carry
//! `recovery = true`.

use aimes::journal::{JournalEvent, RunJournal};
use std::collections::BTreeMap;
use std::fmt;

/// Unit states as recorded in the journal (Debug names of
/// `aimes_pilot::UnitState`). Unknown strings map to [`UnitPhase::Other`]
/// so a newer journal never panics an older analyzer.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum UnitPhase {
    New,
    PendingExecution,
    StagingInput,
    Executing,
    StagingOutput,
    Done,
    Failed,
    Canceled,
    Other,
}

impl UnitPhase {
    pub fn parse(s: &str) -> UnitPhase {
        match s {
            "New" => UnitPhase::New,
            "PendingExecution" => UnitPhase::PendingExecution,
            "StagingInput" => UnitPhase::StagingInput,
            "Executing" => UnitPhase::Executing,
            "StagingOutput" => UnitPhase::StagingOutput,
            "Done" => UnitPhase::Done,
            "Failed" => UnitPhase::Failed,
            "Canceled" => UnitPhase::Canceled,
            _ => UnitPhase::Other,
        }
    }

    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            UnitPhase::Done | UnitPhase::Failed | UnitPhase::Canceled
        )
    }
}

impl fmt::Display for UnitPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Pilot states as recorded in the journal (Debug names of
/// `aimes_pilot::PilotState`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum PilotPhase {
    New,
    PendingLaunch,
    Launching,
    PendingActive,
    Active,
    Done,
    Failed,
    Canceled,
    Other,
}

impl PilotPhase {
    pub fn parse(s: &str) -> PilotPhase {
        match s {
            "New" => PilotPhase::New,
            "PendingLaunch" => PilotPhase::PendingLaunch,
            "Launching" => PilotPhase::Launching,
            "PendingActive" => PilotPhase::PendingActive,
            "Active" => PilotPhase::Active,
            "Done" => PilotPhase::Done,
            "Failed" => PilotPhase::Failed,
            "Canceled" => PilotPhase::Canceled,
            _ => PilotPhase::Other,
        }
    }
}

impl fmt::Display for PilotPhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One closed state interval `[start, end)` on an entity's timeline.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Interval<P> {
    pub phase: P,
    pub start_secs: f64,
    pub end_secs: f64,
    /// True on unit intervals between a restart and the next `Executing`:
    /// time the unit spends redoing or re-queuing lost work.
    pub recovery: bool,
}

impl<P> Interval<P> {
    pub fn dwell_secs(&self) -> f64 {
        self.end_secs - self.start_secs
    }
}

/// One unit's reconstructed timeline.
#[derive(Clone, Debug)]
pub struct UnitTimeline {
    pub id: u32,
    pub cores: u32,
    /// Contiguous state intervals, in time order.
    pub intervals: Vec<Interval<UnitPhase>>,
    /// Binding history: `(at_secs, pilot)` as of each transition.
    pub bindings: Vec<(f64, Option<u32>)>,
    /// Restarts observed (transitions back into `PendingExecution` from an
    /// in-flight state).
    pub restarts: u32,
}

impl UnitTimeline {
    /// The pilot this unit was bound to at time `t` (last binding at or
    /// before `t`).
    pub fn pilot_at(&self, t: f64) -> Option<u32> {
        self.bindings
            .iter()
            .take_while(|(at, _)| *at <= t)
            .last()
            .and_then(|(_, p)| *p)
    }

    /// Time of the transition *into* `Done`, if the unit finished.
    pub fn done_at(&self) -> Option<f64> {
        self.intervals
            .iter()
            .find(|iv| iv.phase == UnitPhase::Done)
            .map(|iv| iv.start_secs)
    }

    /// Total dwell in one phase across all visits.
    pub fn dwell_in(&self, phase: UnitPhase) -> f64 {
        self.intervals
            .iter()
            .filter(|iv| iv.phase == phase)
            .map(Interval::dwell_secs)
            .sum()
    }
}

/// One pilot's reconstructed timeline.
#[derive(Clone, Debug)]
pub struct PilotTimeline {
    pub id: u32,
    pub resource: String,
    pub cores: u32,
    pub intervals: Vec<Interval<PilotPhase>>,
}

impl PilotTimeline {
    /// Time the pilot first became `Active`, if it ever did.
    pub fn active_at(&self) -> Option<f64> {
        self.intervals
            .iter()
            .find(|iv| iv.phase == PilotPhase::Active)
            .map(|iv| iv.start_secs)
    }

    /// True if the pilot is `Active` at time `t`.
    pub fn is_active_at(&self, t: f64) -> bool {
        self.intervals
            .iter()
            .any(|iv| iv.phase == PilotPhase::Active && iv.start_secs <= t && t < iv.end_secs)
    }
}

/// One failure-detector suspicion window on a pilot.
#[derive(Clone, Debug)]
pub struct DetectionWindow {
    pub pilot: u32,
    pub resource: String,
    pub start_secs: f64,
    pub end_secs: f64,
    /// Closing verdict: `Recovered`, `DeclaredDead`, or `Unresolved` when
    /// the run ended with the window still open.
    pub verdict: String,
}

/// Everything reconstructed from one journal: the session frame plus every
/// entity's timeline.
#[derive(Clone, Debug)]
pub struct SessionTimelines {
    pub seed: u64,
    pub strategy: String,
    pub n_tasks: u32,
    /// Journal time of `RunStarted` (submission).
    pub started_at: f64,
    /// Journal time of `RunFinished`; `None` for a torn journal.
    pub finished_at: Option<f64>,
    /// The simulator's own TTC claim from `RunFinished`.
    pub ttc_reported: Option<f64>,
    /// Horizon every open interval was closed at: `finished_at`, or the
    /// last event time of a torn journal.
    pub horizon: f64,
    pub units: BTreeMap<u32, UnitTimeline>,
    pub pilots: BTreeMap<u32, PilotTimeline>,
    pub detections: Vec<DetectionWindow>,
    pub replans: u32,
    pub breaker_trips: u32,
    pub blacklists: u32,
    pub stale_signals: u32,
    /// Decisions the information plane served below the fresh path.
    pub info_fallbacks: u32,
    /// Correlated-failure alarms raised on a failure domain.
    pub domain_alarms: u32,
    /// Pilots proactively drained out of an alarmed domain.
    pub evacuations: u32,
    /// Checkpoint boundaries recorded on aborted attempts.
    pub checkpoints: u32,
    /// Attempts resumed from a checkpoint instead of from scratch.
    pub resumes: u32,
    /// Seconds between the first domain alarm and the first completed
    /// evacuation drain — the lead time proactive evacuation bought.
    pub evacuation_lead_secs: Option<f64>,
}

/// Why a journal could not be turned into timelines.
#[derive(Clone, Debug, PartialEq)]
pub enum ReconstructError {
    EmptyJournal,
    /// The first entry was not `RunStarted`, so there is no session frame
    /// to anchor the timelines.
    NoRunStarted,
}

impl fmt::Display for ReconstructError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReconstructError::EmptyJournal => write!(f, "journal is empty"),
            ReconstructError::NoRunStarted => {
                write!(f, "journal does not begin with a RunStarted entry")
            }
        }
    }
}

impl std::error::Error for ReconstructError {}

struct OpenState<P> {
    phase: P,
    since: f64,
    recovery: bool,
}

/// Replay `journal` into per-entity timelines.
pub fn reconstruct(journal: &RunJournal) -> Result<SessionTimelines, ReconstructError> {
    let entries = journal.entries();
    if entries.is_empty() {
        return Err(ReconstructError::EmptyJournal);
    }
    let (seed, strategy, n_tasks, started_at) = match &entries[0].event {
        JournalEvent::RunStarted {
            seed,
            strategy,
            n_tasks,
        } => (*seed, strategy.clone(), *n_tasks, entries[0].at_secs),
        _ => return Err(ReconstructError::NoRunStarted),
    };

    let mut units: BTreeMap<u32, UnitTimeline> = BTreeMap::new();
    let mut unit_open: BTreeMap<u32, OpenState<UnitPhase>> = BTreeMap::new();
    let mut pilots: BTreeMap<u32, PilotTimeline> = BTreeMap::new();
    let mut pilot_open: BTreeMap<u32, OpenState<PilotPhase>> = BTreeMap::new();
    let mut detections: Vec<DetectionWindow> = Vec::new();
    let mut suspicion_open: BTreeMap<u32, (String, f64)> = BTreeMap::new();
    let mut finished_at = None;
    let mut ttc_reported = None;
    let mut replans = 0;
    let mut breaker_trips = 0;
    let mut blacklists = 0;
    let mut stale_signals = 0;
    let mut info_fallbacks = 0;
    let mut domain_alarms = 0;
    let mut evacuations = 0;
    let mut checkpoints = 0;
    let mut resumes = 0;
    let mut first_alarm_at: Option<f64> = None;
    let mut evacuation_lead_secs: Option<f64> = None;
    let mut last_at = started_at;

    for entry in entries {
        let at = entry.at_secs;
        last_at = at;
        match &entry.event {
            JournalEvent::RunStarted { .. } => {}
            JournalEvent::PilotTransition {
                pilot,
                state,
                resource,
                cores,
            } => {
                let phase = PilotPhase::parse(state);
                let tl = pilots.entry(*pilot).or_insert_with(|| PilotTimeline {
                    id: *pilot,
                    resource: resource.clone(),
                    cores: *cores,
                    intervals: Vec::new(),
                });
                // Journals written before the schema carried placement
                // leave these defaulted; keep the first non-empty values.
                if tl.resource.is_empty() && !resource.is_empty() {
                    tl.resource = resource.clone();
                }
                if tl.cores == 0 {
                    tl.cores = *cores;
                }
                match pilot_open.get_mut(pilot) {
                    Some(open) => {
                        tl.intervals.push(Interval {
                            phase: open.phase,
                            start_secs: open.since,
                            end_secs: at,
                            recovery: false,
                        });
                        open.phase = phase;
                        open.since = at;
                    }
                    None => {
                        // Implicit birth: the pilot existed in New since
                        // run start.
                        if phase != PilotPhase::New && at > started_at {
                            tl.intervals.push(Interval {
                                phase: PilotPhase::New,
                                start_secs: started_at,
                                end_secs: at,
                                recovery: false,
                            });
                        }
                        pilot_open.insert(
                            *pilot,
                            OpenState {
                                phase,
                                since: at,
                                recovery: false,
                            },
                        );
                    }
                }
            }
            JournalEvent::UnitTransition {
                unit,
                state,
                pilot,
                cores,
            } => {
                let phase = UnitPhase::parse(state);
                let tl = units.entry(*unit).or_insert_with(|| UnitTimeline {
                    id: *unit,
                    cores: *cores,
                    intervals: Vec::new(),
                    bindings: Vec::new(),
                    restarts: 0,
                });
                if tl.cores == 0 {
                    tl.cores = *cores;
                }
                tl.bindings.push((at, *pilot));
                match unit_open.get_mut(unit) {
                    Some(open) => {
                        // A return to PendingExecution from an in-flight
                        // state is a restart; the recovery tag sticks
                        // until the unit executes again.
                        let restarted = phase == UnitPhase::PendingExecution
                            && matches!(
                                open.phase,
                                UnitPhase::StagingInput
                                    | UnitPhase::Executing
                                    | UnitPhase::StagingOutput
                            );
                        tl.intervals.push(Interval {
                            phase: open.phase,
                            start_secs: open.since,
                            end_secs: at,
                            recovery: open.recovery,
                        });
                        if restarted {
                            tl.restarts += 1;
                            open.recovery = true;
                        } else if phase == UnitPhase::Executing {
                            open.recovery = false;
                        }
                        open.phase = phase;
                        open.since = at;
                    }
                    None => {
                        if phase != UnitPhase::New && at > started_at {
                            tl.intervals.push(Interval {
                                phase: UnitPhase::New,
                                start_secs: started_at,
                                end_secs: at,
                                recovery: false,
                            });
                        }
                        unit_open.insert(
                            *unit,
                            OpenState {
                                phase,
                                since: at,
                                recovery: false,
                            },
                        );
                    }
                }
            }
            JournalEvent::Detector {
                pilot,
                resource,
                verdict,
                ..
            } => match verdict.as_str() {
                "Suspected" => {
                    suspicion_open
                        .entry(*pilot)
                        .or_insert_with(|| (resource.clone(), at));
                }
                "Recovered" | "DeclaredDead" => {
                    if let Some((res, since)) = suspicion_open.remove(pilot) {
                        detections.push(DetectionWindow {
                            pilot: *pilot,
                            resource: res,
                            start_secs: since,
                            end_secs: at,
                            verdict: verdict.clone(),
                        });
                    }
                }
                _ => {}
            },
            JournalEvent::StaleSignal { .. } => stale_signals += 1,
            JournalEvent::InfoFallback { .. } => info_fallbacks += 1,
            JournalEvent::BreakerTrip { .. } => breaker_trips += 1,
            JournalEvent::Blacklist { .. } => blacklists += 1,
            JournalEvent::Replan { .. } => replans += 1,
            JournalEvent::DomainAlarm { .. } => {
                domain_alarms += 1;
                first_alarm_at.get_or_insert(at);
            }
            JournalEvent::Evacuation { .. } => {
                evacuations += 1;
                if evacuation_lead_secs.is_none() {
                    if let Some(alarm_at) = first_alarm_at {
                        evacuation_lead_secs = Some(at - alarm_at);
                    }
                }
            }
            JournalEvent::Checkpoint { .. } => checkpoints += 1,
            JournalEvent::ResumeFromCheckpoint { .. } => resumes += 1,
            JournalEvent::RunFinished { ttc_secs } => {
                finished_at = Some(at);
                ttc_reported = Some(*ttc_secs);
            }
        }
    }

    let horizon = finished_at.unwrap_or(last_at);
    for (id, open) in unit_open {
        let tl = units.get_mut(&id).expect("opened units exist");
        tl.intervals.push(Interval {
            phase: open.phase,
            start_secs: open.since,
            end_secs: horizon.max(open.since),
            recovery: open.recovery,
        });
    }
    for (id, open) in pilot_open {
        let tl = pilots.get_mut(&id).expect("opened pilots exist");
        tl.intervals.push(Interval {
            phase: open.phase,
            start_secs: open.since,
            end_secs: horizon.max(open.since),
            recovery: false,
        });
    }
    for (pilot, (res, since)) in suspicion_open {
        detections.push(DetectionWindow {
            pilot,
            resource: res,
            start_secs: since,
            end_secs: horizon.max(since),
            verdict: "Unresolved".into(),
        });
    }
    detections.sort_by(|a, b| {
        a.start_secs
            .partial_cmp(&b.start_secs)
            .expect("finite times")
            .then(a.pilot.cmp(&b.pilot))
    });

    Ok(SessionTimelines {
        seed,
        strategy,
        n_tasks,
        started_at,
        finished_at,
        ttc_reported,
        horizon,
        units,
        pilots,
        detections,
        replans,
        breaker_trips,
        blacklists,
        stale_signals,
        info_fallbacks,
        domain_alarms,
        evacuations,
        checkpoints,
        resumes,
        evacuation_lead_secs,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimes_sim::SimTime;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn started(j: &mut RunJournal) {
        j.record(
            t(0.0),
            JournalEvent::RunStarted {
                seed: 1,
                strategy: "early".into(),
                n_tasks: 2,
            },
        );
    }

    fn unit(j: &mut RunJournal, at: f64, unit: u32, state: &str, pilot: Option<u32>) {
        j.record(
            t(at),
            JournalEvent::UnitTransition {
                unit,
                state: state.into(),
                pilot,
                cores: 2,
            },
        );
    }

    fn pilot(j: &mut RunJournal, at: f64, pilot: u32, state: &str) {
        j.record(
            t(at),
            JournalEvent::PilotTransition {
                pilot,
                state: state.into(),
                resource: "alpha".into(),
                cores: 8,
            },
        );
    }

    #[test]
    fn reconstructs_contiguous_intervals() {
        let mut j = RunJournal::new();
        started(&mut j);
        pilot(&mut j, 1.0, 0, "PendingLaunch");
        pilot(&mut j, 10.0, 0, "Active");
        unit(&mut j, 0.5, 7, "PendingExecution", None);
        unit(&mut j, 10.0, 7, "StagingInput", Some(0));
        unit(&mut j, 12.0, 7, "Executing", Some(0));
        unit(&mut j, 40.0, 7, "StagingOutput", Some(0));
        unit(&mut j, 41.0, 7, "Done", Some(0));
        j.record(t(41.0), JournalEvent::RunFinished { ttc_secs: 41.0 });

        let tl = reconstruct(&j).unwrap();
        assert_eq!(tl.started_at, 0.0);
        assert_eq!(tl.finished_at, Some(41.0));
        assert_eq!(tl.ttc_reported, Some(41.0));

        let u = &tl.units[&7];
        assert_eq!(u.cores, 2);
        let phases: Vec<UnitPhase> = u.intervals.iter().map(|iv| iv.phase).collect();
        assert_eq!(
            phases,
            vec![
                UnitPhase::New,
                UnitPhase::PendingExecution,
                UnitPhase::StagingInput,
                UnitPhase::Executing,
                UnitPhase::StagingOutput,
                UnitPhase::Done,
            ]
        );
        // Contiguity: each interval starts where the previous ended.
        for pair in u.intervals.windows(2) {
            assert_eq!(pair[0].end_secs, pair[1].start_secs);
        }
        assert_eq!(u.done_at(), Some(41.0));
        assert_eq!(u.pilot_at(12.5), Some(0));
        assert_eq!(u.pilot_at(0.7), None);
        assert!((u.dwell_in(UnitPhase::Executing) - 28.0).abs() < 1e-12);

        let p = &tl.pilots[&0];
        assert_eq!(p.resource, "alpha");
        assert_eq!(p.cores, 8);
        assert_eq!(p.active_at(), Some(10.0));
        assert!(p.is_active_at(30.0));
        assert!(!p.is_active_at(5.0));
    }

    #[test]
    fn restart_tags_recovery_until_next_execution() {
        let mut j = RunJournal::new();
        started(&mut j);
        unit(&mut j, 1.0, 0, "PendingExecution", None);
        unit(&mut j, 2.0, 0, "StagingInput", Some(0));
        unit(&mut j, 3.0, 0, "Executing", Some(0));
        unit(&mut j, 50.0, 0, "PendingExecution", None); // restart
        unit(&mut j, 60.0, 0, "StagingInput", Some(1));
        unit(&mut j, 61.0, 0, "Executing", Some(1));
        unit(&mut j, 90.0, 0, "StagingOutput", Some(1));
        unit(&mut j, 91.0, 0, "Done", Some(1));
        j.record(t(91.0), JournalEvent::RunFinished { ttc_secs: 91.0 });

        let tl = reconstruct(&j).unwrap();
        let u = &tl.units[&0];
        assert_eq!(u.restarts, 1);
        let rec: Vec<(UnitPhase, bool)> = u
            .intervals
            .iter()
            .map(|iv| (iv.phase, iv.recovery))
            .collect();
        assert!(rec.contains(&(UnitPhase::PendingExecution, true)));
        assert!(rec.contains(&(UnitPhase::StagingInput, true)));
        // Post-restart execution is real work again, not recovery.
        let second_exec = u
            .intervals
            .iter()
            .filter(|iv| iv.phase == UnitPhase::Executing)
            .nth(1)
            .unwrap();
        assert!(!second_exec.recovery);
    }

    #[test]
    fn torn_journal_closes_at_last_event() {
        let mut j = RunJournal::new();
        started(&mut j);
        unit(&mut j, 1.0, 0, "PendingExecution", None);
        unit(&mut j, 5.0, 0, "StagingInput", Some(0));
        let tl = reconstruct(&j).unwrap();
        assert_eq!(tl.finished_at, None);
        assert_eq!(tl.horizon, 5.0);
        let u = &tl.units[&0];
        assert_eq!(u.intervals.last().unwrap().end_secs, 5.0);
    }

    #[test]
    fn detection_windows_open_and_close() {
        let mut j = RunJournal::new();
        started(&mut j);
        j.record(
            t(100.0),
            JournalEvent::Detector {
                pilot: 0,
                resource: "alpha".into(),
                verdict: "Suspected".into(),
                silent_secs: 45.0,
            },
        );
        j.record(
            t(160.0),
            JournalEvent::Detector {
                pilot: 0,
                resource: "alpha".into(),
                verdict: "DeclaredDead".into(),
                silent_secs: 105.0,
            },
        );
        j.record(
            t(200.0),
            JournalEvent::Detector {
                pilot: 1,
                resource: "beta".into(),
                verdict: "Suspected".into(),
                silent_secs: 30.0,
            },
        );
        j.record(t(300.0), JournalEvent::RunFinished { ttc_secs: 300.0 });
        let tl = reconstruct(&j).unwrap();
        assert_eq!(tl.detections.len(), 2);
        assert_eq!(tl.detections[0].verdict, "DeclaredDead");
        assert_eq!(tl.detections[0].end_secs, 160.0);
        assert_eq!(tl.detections[1].verdict, "Unresolved");
        assert_eq!(tl.detections[1].end_secs, 300.0);
    }

    #[test]
    fn cascade_counters_and_evacuation_lead() {
        let mut j = RunJournal::new();
        started(&mut j);
        j.record(
            t(100.0),
            JournalEvent::DomainAlarm {
                domain: "sdsc".into(),
                members: vec!["gordon".into(), "trestles".into()],
            },
        );
        j.record(
            t(130.0),
            JournalEvent::Evacuation {
                domain: "sdsc".into(),
                resource: "gordon".into(),
                pilot: 1,
            },
        );
        j.record(
            t(150.0),
            JournalEvent::Evacuation {
                domain: "sdsc".into(),
                resource: "trestles".into(),
                pilot: 2,
            },
        );
        j.record(
            t(200.0),
            JournalEvent::Checkpoint {
                unit: 3,
                progress_secs: 120.0,
            },
        );
        j.record(
            t(260.0),
            JournalEvent::ResumeFromCheckpoint {
                unit: 3,
                salvaged_secs: 120.0,
            },
        );
        j.record(t(300.0), JournalEvent::RunFinished { ttc_secs: 300.0 });
        let tl = reconstruct(&j).unwrap();
        assert_eq!(tl.domain_alarms, 1);
        assert_eq!(tl.evacuations, 2);
        assert_eq!(tl.checkpoints, 1);
        assert_eq!(tl.resumes, 1);
        // Lead time is first alarm -> first completed drain.
        assert_eq!(tl.evacuation_lead_secs, Some(30.0));
    }

    #[test]
    fn rejects_journals_without_a_frame() {
        assert_eq!(
            reconstruct(&RunJournal::new()).unwrap_err(),
            ReconstructError::EmptyJournal
        );
        let mut j = RunJournal::new();
        unit(&mut j, 1.0, 0, "PendingExecution", None);
        assert_eq!(reconstruct(&j).unwrap_err(), ReconstructError::NoRunStarted);
    }
}
