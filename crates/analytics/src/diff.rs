//! Run-to-run regression comparison: two analyses, component by
//! component, with a configurable threshold. The CLI exits nonzero when
//! any regression is flagged, which is what lets CI gate on it.

use crate::AnalysisReport;
use serde::{Deserialize, Serialize};

/// One compared quantity.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ComponentDelta {
    pub name: String,
    pub a_secs: f64,
    pub b_secs: f64,
    pub delta_secs: f64,
    /// Relative change against run A (uses a 1 s floor so a 0 → 2 s jump
    /// still reads as a finite ratio).
    pub rel_change: f64,
    pub regressed: bool,
}

/// The full comparison.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DiffReport {
    pub threshold: f64,
    pub deltas: Vec<ComponentDelta>,
    /// Names of regressed quantities, in display order.
    pub regressions: Vec<String>,
    /// True when either input failed its closure check — the comparison
    /// is then built on inconsistent numbers and must not gate green.
    pub closure_broken: bool,
}

impl DiffReport {
    pub fn is_regression(&self) -> bool {
        !self.regressions.is_empty() || self.closure_broken
    }
}

/// A quantity regresses when run B exceeds run A by more than `threshold`
/// relative to A *and* by more than 1 ms absolute — the floor keeps
/// femto-jitter in near-zero components from failing builds.
fn regressed(a: f64, b: f64, threshold: f64) -> bool {
    b - a > threshold * a.max(1.0) && b - a > 1e-3
}

/// Compare two analyses. `threshold` is relative (0.10 = +10 % fails).
pub fn diff(a: &AnalysisReport, b: &AnalysisReport, threshold: f64) -> DiffReport {
    let mut deltas = Vec::new();
    let mut regressions = Vec::new();
    let mut push = |name: &str, av: f64, bv: f64| {
        let is_reg = regressed(av, bv, threshold);
        deltas.push(ComponentDelta {
            name: name.into(),
            a_secs: av,
            b_secs: bv,
            delta_secs: bv - av,
            rel_change: (bv - av) / av.max(1.0),
            regressed: is_reg,
        });
        if is_reg {
            regressions.push(name.to_string());
        }
    };

    push(
        "ttc",
        a.ttc_reported_secs.unwrap_or(f64::NAN),
        b.ttc_reported_secs.unwrap_or(f64::NAN),
    );
    for ((name, av), (_, bv)) in a.ttc.components().iter().zip(b.ttc.components().iter()) {
        push(name, *av, *bv);
    }
    push(
        "critical-path",
        a.critical_path.total_secs,
        b.critical_path.total_secs,
    );

    let closure_broken = [a, b]
        .iter()
        .any(|r| r.closure.map(|c| !c.holds).unwrap_or(true));
    DiffReport {
        threshold,
        deltas,
        regressions,
        closure_broken,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::critical_path::CriticalPath;
    use crate::decompose::{ClosureCheck, ExclusiveTtc};

    fn report(exec: f64, queue: f64) -> AnalysisReport {
        let ttc = ExclusiveTtc {
            execution_secs: exec,
            queue_wait_secs: queue,
            ..Default::default()
        };
        let sum = ttc.sum_secs();
        AnalysisReport {
            schema: crate::SCHEMA.into(),
            seed: 1,
            strategy: "early".into(),
            n_tasks: 4,
            started_at_secs: 0.0,
            finished_at_secs: Some(sum),
            ttc_reported_secs: Some(sum),
            discarded_journal_lines: 0,
            ttc,
            closure: Some(ClosureCheck {
                ttc_reported_secs: sum,
                component_sum_secs: sum,
                error_secs: 0.0,
                epsilon_secs: 1e-6,
                holds: true,
            }),
            mean_utilization: 0.5,
            series: Vec::new(),
            critical_path: CriticalPath {
                segments: Vec::new(),
                total_secs: sum,
                digest: "0".into(),
            },
            stragglers: Vec::new(),
            unit_count: 4,
            pilot_count: 1,
            restarts: 0,
            replans: 0,
            domain_alarms: 0,
            evacuations: 0,
            checkpoints: 0,
            resumes: 0,
            evacuation_lead_secs: None,
        }
    }

    #[test]
    fn flags_slowdowns_beyond_threshold() {
        let a = report(100.0, 50.0);
        let b = report(100.0, 80.0); // queue wait +60 %
        let d = diff(&a, &b, 0.10);
        assert!(d.is_regression());
        assert!(d.regressions.contains(&"queue-wait".to_string()));
        assert!(d.regressions.contains(&"ttc".to_string()));
        assert!(!d.regressions.contains(&"execution".to_string()));
    }

    #[test]
    fn equal_runs_pass() {
        let a = report(100.0, 50.0);
        let d = diff(&a, &a.clone(), 0.10);
        assert!(!d.is_regression());
        assert!(d.regressions.is_empty());
    }

    #[test]
    fn improvements_never_fail() {
        let a = report(100.0, 50.0);
        let b = report(60.0, 10.0);
        assert!(!diff(&a, &b, 0.10).is_regression());
    }

    #[test]
    fn broken_closure_poisons_the_gate() {
        let a = report(100.0, 50.0);
        let mut b = report(100.0, 50.0);
        b.closure = None;
        assert!(diff(&a, &b, 0.10).is_regression());
    }
}
