//! Critical-path extraction through the DAG → unit → pilot → resource
//! graph.
//!
//! The critical path answers "which chain of waits and work determined the
//! TTC?". It is extracted by a backward walk: start at the unit that
//! finished last and walk its timeline backwards, attributing each
//! interval to a component; when the walk reaches the unit's `New`
//! interval (dependency wait), it jumps to the predecessor unit whose
//! completion released it — the unit with the latest `Done` at or before
//! the wait's end — and continues from there. `PendingExecution` waits are
//! split at the bound pilot's activation time into *queue wait* (batch
//! queue + pilot bootstrap, charged to the pilot's resource) and *agent
//! scheduling* (the pilot was up but busy). The resulting segments tile
//! `[started_at, last_done]` and each carries the component and the
//! entity (unit/pilot/resource) responsible.
//!
//! The walk is deterministic given the journal, so the rendered path has a
//! stable digest — pinned in the golden tests exactly like the journal
//! digests.

use crate::timeline::{SessionTimelines, UnitPhase, UnitTimeline};
use serde::{Deserialize, Serialize};

/// One attributed span of the critical path, in time order.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    pub start_secs: f64,
    pub end_secs: f64,
    /// Component name, matching [`crate::decompose::ExclusiveTtc`]
    /// component names.
    pub component: String,
    /// The entity the span is charged to, e.g. `unit 12` or `pilot 2`.
    pub entity: String,
    /// Resource attribution (empty when not placed yet).
    pub resource: String,
    /// Human detail: the state or the dependency edge.
    pub detail: String,
}

impl Segment {
    pub fn dwell_secs(&self) -> f64 {
        self.end_secs - self.start_secs
    }
}

/// The extracted critical path.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize, Default)]
pub struct CriticalPath {
    /// Segments in time order (earliest first).
    pub segments: Vec<Segment>,
    /// Sum of segment dwells.
    pub total_secs: f64,
    /// FNV-1a 64 digest over the segments' canonical encoding; stable for
    /// a fixed seed.
    pub digest: String,
}

fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

fn digest_of(segments: &[Segment]) -> String {
    let mut canon = String::new();
    for s in segments {
        canon.push_str(&format!(
            "{:016x}|{:016x}|{}|{}|{}|{}\n",
            s.start_secs.to_bits(),
            s.end_secs.to_bits(),
            s.component,
            s.entity,
            s.resource,
            s.detail,
        ));
    }
    format!("{:016x}", fnv1a64(canon.as_bytes()))
}

/// The unit with the latest `Done` at or before `by` — the dependency
/// whose completion released a `New → PendingExecution` transition.
/// Ties break toward the lowest unit id, keeping the walk deterministic.
fn predecessor_of(tl: &SessionTimelines, exclude: u32, by: f64) -> Option<(&UnitTimeline, f64)> {
    let mut best: Option<(&UnitTimeline, f64)> = None;
    for u in tl.units.values() {
        if u.id == exclude {
            continue;
        }
        let Some(done) = u.done_at() else { continue };
        if done > by {
            continue;
        }
        match best {
            Some((_, t)) if done <= t => {}
            _ => best = Some((u, done)),
        }
    }
    best
}

/// Extract the critical path. Returns an empty path when no unit finished
/// (nothing determined a completion time).
pub fn extract(tl: &SessionTimelines) -> CriticalPath {
    let Some((mut unit, mut cursor)) = tl
        .units
        .values()
        .filter_map(|u| u.done_at().map(|d| (u, d)))
        .max_by(|a, b| {
            a.1.partial_cmp(&b.1)
                .expect("finite times")
                .then(b.0.id.cmp(&a.0.id))
        })
    else {
        return CriticalPath::default();
    };

    let mut segments: Vec<Segment> = Vec::new();
    // Hard cap: each hop strictly reduces `cursor` or moves to an earlier
    // interval, but guard against pathological journals anyway.
    let max_hops = tl.units.len() * 16 + 64;
    'walk: for _ in 0..max_hops {
        // Walk this unit's intervals backwards from `cursor`.
        let intervals: Vec<_> = unit
            .intervals
            .iter()
            .filter(|iv| iv.start_secs < cursor && !iv.phase.is_terminal())
            .cloned()
            .collect();
        for iv in intervals.iter().rev() {
            let end = iv.end_secs.min(cursor);
            let start = iv.start_secs;
            let entity = format!("unit {}", unit.id);
            let pilot = unit.pilot_at(end);
            let resource = pilot
                .and_then(|p| tl.pilots.get(&p))
                .map(|p| p.resource.clone())
                .unwrap_or_default();
            match iv.phase {
                UnitPhase::Executing => {
                    segments.push(Segment {
                        start_secs: start,
                        end_secs: end,
                        component: if iv.recovery { "recovery" } else { "execution" }.into(),
                        entity,
                        resource,
                        detail: "Executing".into(),
                    });
                }
                UnitPhase::StagingInput | UnitPhase::StagingOutput => {
                    segments.push(Segment {
                        start_secs: start,
                        end_secs: end,
                        component: "staging".into(),
                        entity,
                        resource,
                        detail: if iv.recovery {
                            format!("{} (retry)", iv.phase)
                        } else {
                            iv.phase.to_string()
                        },
                    });
                }
                UnitPhase::PendingExecution => {
                    // Where did this pending spell land? The binding that
                    // took effect when the unit left the spell names the
                    // pilot; its activation splits the wait.
                    let next_pilot = unit.pilot_at(end + 1e-12).or(pilot);
                    let ptl = next_pilot.and_then(|p| tl.pilots.get(&p));
                    let res = ptl.map(|p| p.resource.clone()).unwrap_or_default();
                    let active_at = ptl.and_then(|p| p.active_at());
                    let component = if iv.recovery {
                        "recovery"
                    } else {
                        "queue-wait"
                    };
                    match active_at {
                        Some(a) if a > start && a < end => {
                            // Segments are collected latest-first (the
                            // final reverse restores time order), so the
                            // agent-scheduling half goes in before the
                            // queue half.
                            segments.push(Segment {
                                start_secs: a,
                                end_secs: end,
                                component: if iv.recovery {
                                    "recovery"
                                } else {
                                    "agent-scheduling"
                                }
                                .into(),
                                entity,
                                resource: res.clone(),
                                detail: "waiting for agent slot".into(),
                            });
                            segments.push(Segment {
                                start_secs: start,
                                end_secs: a,
                                component: component.into(),
                                entity: next_pilot
                                    .map(|p| format!("pilot {p}"))
                                    .unwrap_or_else(|| format!("unit {}", unit.id)),
                                resource: res,
                                detail: "waiting for pilot activation".into(),
                            });
                        }
                        Some(a) if a <= start => {
                            segments.push(Segment {
                                start_secs: start,
                                end_secs: end,
                                component: if iv.recovery {
                                    "recovery"
                                } else {
                                    "agent-scheduling"
                                }
                                .into(),
                                entity,
                                resource: res,
                                detail: "waiting for agent slot".into(),
                            });
                        }
                        _ => {
                            segments.push(Segment {
                                start_secs: start,
                                end_secs: end,
                                component: component.into(),
                                entity: next_pilot.map(|p| format!("pilot {p}")).unwrap_or(entity),
                                resource: res,
                                detail: "waiting for pilot activation".into(),
                            });
                        }
                    }
                }
                UnitPhase::New => {
                    // Dependency wait: jump to the predecessor that
                    // released this unit, if one finished inside the wait.
                    match predecessor_of(tl, unit.id, end + 1e-9) {
                        Some((pred, done)) if done > start && done < cursor => {
                            // Usually zero-length (the release happens at
                            // the predecessor's Done), but kept so the
                            // dependency edge is visible in the path.
                            segments.push(Segment {
                                start_secs: done,
                                end_secs: end.max(done),
                                component: "queue-wait".into(),
                                entity: format!("unit {}", unit.id),
                                resource: String::new(),
                                detail: format!("released by unit {}", pred.id),
                            });
                            unit = pred;
                            cursor = done;
                            continue 'walk;
                        }
                        _ => {
                            if end > start {
                                segments.push(Segment {
                                    start_secs: start,
                                    end_secs: end,
                                    component: "queue-wait".into(),
                                    entity,
                                    resource,
                                    detail: "New (awaiting submission)".into(),
                                });
                            }
                        }
                    }
                }
                _ => {}
            }
        }
        break;
    }

    segments.reverse();
    let total_secs = {
        let mut sum = 0.0f64;
        let mut c = 0.0f64;
        for s in &segments {
            let y = s.dwell_secs() - c;
            let t = sum + y;
            c = (t - sum) - y;
            sum = t;
        }
        sum
    };
    let digest = digest_of(&segments);
    CriticalPath {
        segments,
        total_secs,
        digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::reconstruct;
    use aimes::journal::{JournalEvent, RunJournal};
    use aimes_sim::SimTime;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn unit_ev(j: &mut RunJournal, at: f64, unit: u32, state: &str, pilot: Option<u32>) {
        j.record(
            t(at),
            JournalEvent::UnitTransition {
                unit,
                state: state.into(),
                pilot,
                cores: 1,
            },
        );
    }

    /// Two units in a chain: unit 1 depends on unit 0. The path must walk
    /// through both.
    #[test]
    fn walks_dependency_chain() {
        let mut j = RunJournal::new();
        j.record(
            t(0.0),
            JournalEvent::RunStarted {
                seed: 1,
                strategy: "early".into(),
                n_tasks: 2,
            },
        );
        j.record(
            t(0.0),
            JournalEvent::PilotTransition {
                pilot: 0,
                state: "PendingLaunch".into(),
                resource: "alpha".into(),
                cores: 8,
            },
        );
        j.record(
            t(10.0),
            JournalEvent::PilotTransition {
                pilot: 0,
                state: "Active".into(),
                resource: "alpha".into(),
                cores: 8,
            },
        );
        // Unit 0: root.
        unit_ev(&mut j, 0.0, 0, "PendingExecution", None);
        unit_ev(&mut j, 10.0, 0, "StagingInput", Some(0));
        unit_ev(&mut j, 12.0, 0, "Executing", Some(0));
        unit_ev(&mut j, 50.0, 0, "StagingOutput", Some(0));
        unit_ev(&mut j, 52.0, 0, "Done", Some(0));
        // Unit 1: released when unit 0 finishes.
        unit_ev(&mut j, 52.0, 1, "PendingExecution", None);
        unit_ev(&mut j, 53.0, 1, "StagingInput", Some(0));
        unit_ev(&mut j, 55.0, 1, "Executing", Some(0));
        unit_ev(&mut j, 95.0, 1, "StagingOutput", Some(0));
        unit_ev(&mut j, 96.0, 1, "Done", Some(0));
        j.record(t(96.0), JournalEvent::RunFinished { ttc_secs: 96.0 });

        let tl = reconstruct(&j).unwrap();
        let cp = extract(&tl);
        assert!(!cp.segments.is_empty());
        // In time order, starting at run start and ending at last done.
        assert_eq!(cp.segments.first().unwrap().start_secs, 0.0);
        assert_eq!(cp.segments.last().unwrap().end_secs, 96.0);
        for pair in cp.segments.windows(2) {
            assert!(
                pair[0].end_secs <= pair[1].start_secs + 1e-9,
                "segments overlap: {pair:?}"
            );
        }
        // Both units appear.
        assert!(cp.segments.iter().any(|s| s.entity == "unit 0"));
        assert!(cp.segments.iter().any(|s| s.entity == "unit 1"));
        // The dependency hop is attributed.
        assert!(cp
            .segments
            .iter()
            .any(|s| s.detail.contains("released by unit 0")));
        // Execution segments carry the resource.
        assert!(cp
            .segments
            .iter()
            .any(|s| s.component == "execution" && s.resource == "alpha"));
        // The path tiles the whole run: total == ttc.
        assert!((cp.total_secs - 96.0).abs() < 1e-6, "{}", cp.total_secs);
        // Deterministic digest.
        let cp2 = extract(&reconstruct(&j).unwrap());
        assert_eq!(cp.digest, cp2.digest);
    }

    #[test]
    fn pending_wait_splits_at_pilot_activation() {
        let mut j = RunJournal::new();
        j.record(
            t(0.0),
            JournalEvent::RunStarted {
                seed: 1,
                strategy: "early".into(),
                n_tasks: 1,
            },
        );
        j.record(
            t(0.0),
            JournalEvent::PilotTransition {
                pilot: 0,
                state: "PendingLaunch".into(),
                resource: "beta".into(),
                cores: 4,
            },
        );
        j.record(
            t(30.0),
            JournalEvent::PilotTransition {
                pilot: 0,
                state: "Active".into(),
                resource: "beta".into(),
                cores: 4,
            },
        );
        unit_ev(&mut j, 0.0, 0, "PendingExecution", None);
        unit_ev(&mut j, 40.0, 0, "StagingInput", Some(0));
        unit_ev(&mut j, 41.0, 0, "Executing", Some(0));
        unit_ev(&mut j, 61.0, 0, "StagingOutput", Some(0));
        unit_ev(&mut j, 62.0, 0, "Done", Some(0));
        j.record(t(62.0), JournalEvent::RunFinished { ttc_secs: 62.0 });

        let cp = extract(&reconstruct(&j).unwrap());
        let queue: Vec<_> = cp
            .segments
            .iter()
            .filter(|s| s.component == "queue-wait")
            .collect();
        let agent: Vec<_> = cp
            .segments
            .iter()
            .filter(|s| s.component == "agent-scheduling")
            .collect();
        assert_eq!(queue.len(), 1);
        assert_eq!(agent.len(), 1);
        assert!((queue[0].dwell_secs() - 30.0).abs() < 1e-9);
        assert!((agent[0].dwell_secs() - 10.0).abs() < 1e-9);
        assert_eq!(queue[0].resource, "beta");
        assert_eq!(queue[0].entity, "pilot 0");
    }

    #[test]
    fn empty_session_has_empty_path() {
        let mut j = RunJournal::new();
        j.record(
            t(0.0),
            JournalEvent::RunStarted {
                seed: 1,
                strategy: "early".into(),
                n_tasks: 0,
            },
        );
        let cp = extract(&reconstruct(&j).unwrap());
        assert!(cp.segments.is_empty());
        assert_eq!(cp.total_secs, 0.0);
    }
}
