//! Exclusive TTC decomposition with a closure check.
//!
//! The paper's Tw/Tx/Ts components are *unions* of per-entity intervals
//! and overlap freely, so they cannot sum to TTC. Analytics instead
//! *partitions* the run: every instant of `[started_at, finished_at]` is
//! assigned to exactly one component by a priority rule (the run was
//! "doing" whatever its most productive concurrent activity was):
//!
//! 1. **execution** — some unit is `Executing` on an unsuspected pilot;
//! 2. **staging** — some unit is moving data;
//! 3. **detection** — execution only on suspected pilots, or a suspicion
//!    window is open: time spent deciding whether work is lost;
//! 4. **recovery** — a restarted unit is waiting to run again;
//! 5. **agent scheduling** — work is pending and an active pilot exists
//!    to take it;
//! 6. **queue wait** — work is pending with no active pilot (batch-queue
//!    time, pilot startup);
//! 7. **other** — nothing pending (terminal tails, cancel drains).
//!
//! A partition sums to the horizon *by construction*, so the closure
//! check — |Σ components − reported TTC| ≤ ε — is a real consistency
//! oracle: it fails if the timelines were reconstructed wrong, if the
//! journal is torn, or if the simulator's TTC claim disagrees with its
//! own event record.

use crate::timeline::{SessionTimelines, UnitPhase};
use serde::{Deserialize, Serialize};

/// Seconds per exclusive component. Fields sum to the reported TTC when
/// the closure check passes.
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ExclusiveTtc {
    pub execution_secs: f64,
    pub staging_secs: f64,
    pub detection_secs: f64,
    pub recovery_secs: f64,
    pub agent_scheduling_secs: f64,
    pub queue_wait_secs: f64,
    pub other_secs: f64,
}

impl ExclusiveTtc {
    /// `(name, seconds)` pairs in fixed display order.
    pub fn components(&self) -> [(&'static str, f64); 7] {
        [
            ("execution", self.execution_secs),
            ("staging", self.staging_secs),
            ("detection", self.detection_secs),
            ("recovery", self.recovery_secs),
            ("agent-scheduling", self.agent_scheduling_secs),
            ("queue-wait", self.queue_wait_secs),
            ("other", self.other_secs),
        ]
    }

    /// Kahan-compensated sum of all components.
    pub fn sum_secs(&self) -> f64 {
        let mut sum = 0.0f64;
        let mut c = 0.0f64;
        for (_, v) in self.components() {
            let y = v - c;
            let t = sum + y;
            c = (t - sum) - y;
            sum = t;
        }
        sum
    }
}

/// Result of the closure check.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct ClosureCheck {
    pub ttc_reported_secs: f64,
    pub component_sum_secs: f64,
    /// |sum − reported|.
    pub error_secs: f64,
    pub epsilon_secs: f64,
    pub holds: bool,
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Component {
    Execution,
    Staging,
    Detection,
    Recovery,
    AgentScheduling,
    QueueWait,
    Other,
}

// Counter indices for the sweep.
const EXEC_HEALTHY: usize = 0;
const EXEC_SUSPECTED: usize = 1;
const STAGING: usize = 2;
const PENDING_RECOVERY: usize = 3;
const PENDING: usize = 4;
const PILOT_ACTIVE: usize = 5;
const SUSPECTED: usize = 6;
const N_COUNTERS: usize = 7;

fn classify(counts: &[i64; N_COUNTERS]) -> Component {
    if counts[EXEC_HEALTHY] > 0 {
        Component::Execution
    } else if counts[STAGING] > 0 {
        Component::Staging
    } else if counts[EXEC_SUSPECTED] > 0 || counts[SUSPECTED] > 0 {
        Component::Detection
    } else if counts[PENDING_RECOVERY] > 0 {
        Component::Recovery
    } else if counts[PENDING] > 0 && counts[PILOT_ACTIVE] > 0 {
        Component::AgentScheduling
    } else if counts[PENDING] > 0 {
        Component::QueueWait
    } else {
        Component::Other
    }
}

/// Sweep the timelines and partition `[started_at, horizon]` into the
/// exclusive components. Returns the decomposition and, when the journal
/// recorded a `RunFinished`, the closure check against its TTC claim.
pub fn decompose(tl: &SessionTimelines, epsilon_secs: f64) -> (ExclusiveTtc, Option<ClosureCheck>) {
    let lo = tl.started_at;
    let hi = tl.horizon;
    let mut edges: Vec<(f64, usize, i64)> = Vec::new();
    let mut edge = |start: f64, end: f64, counter: usize| {
        let s = start.max(lo);
        let e = end.min(hi);
        if e > s {
            edges.push((s, counter, 1));
            edges.push((e, counter, -1));
        }
    };

    for u in tl.units.values() {
        for iv in &u.intervals {
            match iv.phase {
                UnitPhase::Executing => {
                    // Split the execution interval against the bound
                    // pilot's suspicion windows: execution on a suspected
                    // pilot is time-at-risk, not guaranteed progress.
                    let pilot = u.pilot_at(iv.start_secs);
                    let mut cursor = iv.start_secs;
                    let mut windows: Vec<(f64, f64)> = tl
                        .detections
                        .iter()
                        .filter(|w| Some(w.pilot) == pilot)
                        .map(|w| (w.start_secs.max(iv.start_secs), w.end_secs.min(iv.end_secs)))
                        .filter(|(s, e)| e > s)
                        .collect();
                    windows.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
                    for (s, e) in windows {
                        if s > cursor {
                            edge(cursor, s, EXEC_HEALTHY);
                        }
                        edge(s.max(cursor), e, EXEC_SUSPECTED);
                        cursor = cursor.max(e);
                    }
                    if iv.end_secs > cursor {
                        edge(cursor, iv.end_secs, EXEC_HEALTHY);
                    }
                }
                UnitPhase::StagingInput | UnitPhase::StagingOutput => {
                    edge(iv.start_secs, iv.end_secs, STAGING);
                }
                UnitPhase::New | UnitPhase::PendingExecution => {
                    edge(iv.start_secs, iv.end_secs, PENDING);
                    if iv.recovery {
                        edge(iv.start_secs, iv.end_secs, PENDING_RECOVERY);
                    }
                }
                _ => {}
            }
        }
    }
    for p in tl.pilots.values() {
        for iv in &p.intervals {
            if iv.phase == crate::timeline::PilotPhase::Active {
                edge(iv.start_secs, iv.end_secs, PILOT_ACTIVE);
            }
        }
    }
    for w in &tl.detections {
        edge(w.start_secs, w.end_secs, SUSPECTED);
    }

    // Sweep: at each distinct time apply all deltas, then attribute the
    // span up to the next distinct time to the classification in force.
    edges.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite times"));
    let mut counts = [0i64; N_COUNTERS];
    let mut totals = [0.0f64; 7];
    let mut comps = [0.0f64; 7];
    let mut add = |component: Component, span: f64| {
        let idx = component as usize;
        // Kahan per bucket: thousands of tiny spans must sum exactly
        // enough to pass a 1e-6 closure check.
        let y = span - comps[idx];
        let t = totals[idx] + y;
        comps[idx] = (t - totals[idx]) - y;
        totals[idx] = t;
    };

    let mut cursor = lo;
    let mut i = 0;
    while i < edges.len() {
        let t = edges[i].0;
        if t > cursor {
            add(classify(&counts), t - cursor);
            cursor = t;
        }
        while i < edges.len() && edges[i].0 == t {
            counts[edges[i].1] += edges[i].2;
            i += 1;
        }
    }
    if hi > cursor {
        add(classify(&counts), hi - cursor);
    }

    let ttc = ExclusiveTtc {
        execution_secs: totals[Component::Execution as usize],
        staging_secs: totals[Component::Staging as usize],
        detection_secs: totals[Component::Detection as usize],
        recovery_secs: totals[Component::Recovery as usize],
        agent_scheduling_secs: totals[Component::AgentScheduling as usize],
        queue_wait_secs: totals[Component::QueueWait as usize],
        other_secs: totals[Component::Other as usize],
    };
    let closure = tl.ttc_reported.map(|reported| {
        let sum = ttc.sum_secs();
        let error = (sum - reported).abs();
        ClosureCheck {
            ttc_reported_secs: reported,
            component_sum_secs: sum,
            error_secs: error,
            epsilon_secs,
            holds: error <= epsilon_secs,
        }
    });
    (ttc, closure)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::reconstruct;
    use aimes::journal::{JournalEvent, RunJournal};
    use aimes_sim::SimTime;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn build() -> RunJournal {
        let mut j = RunJournal::new();
        j.record(
            t(0.0),
            JournalEvent::RunStarted {
                seed: 1,
                strategy: "early".into(),
                n_tasks: 1,
            },
        );
        j.record(
            t(0.0),
            JournalEvent::PilotTransition {
                pilot: 0,
                state: "PendingLaunch".into(),
                resource: "alpha".into(),
                cores: 8,
            },
        );
        j.record(
            t(0.0),
            JournalEvent::UnitTransition {
                unit: 0,
                state: "PendingExecution".into(),
                pilot: None,
                cores: 1,
            },
        );
        j.record(
            t(100.0),
            JournalEvent::PilotTransition {
                pilot: 0,
                state: "Active".into(),
                resource: "alpha".into(),
                cores: 8,
            },
        );
        j.record(
            t(110.0),
            JournalEvent::UnitTransition {
                unit: 0,
                state: "StagingInput".into(),
                pilot: Some(0),
                cores: 1,
            },
        );
        j.record(
            t(120.0),
            JournalEvent::UnitTransition {
                unit: 0,
                state: "Executing".into(),
                pilot: Some(0),
                cores: 1,
            },
        );
        j.record(
            t(200.0),
            JournalEvent::UnitTransition {
                unit: 0,
                state: "StagingOutput".into(),
                pilot: Some(0),
                cores: 1,
            },
        );
        j.record(
            t(210.0),
            JournalEvent::UnitTransition {
                unit: 0,
                state: "Done".into(),
                pilot: Some(0),
                cores: 1,
            },
        );
        j.record(t(210.0), JournalEvent::RunFinished { ttc_secs: 210.0 });
        j
    }

    #[test]
    fn partition_closes_exactly() {
        let tl = reconstruct(&build()).unwrap();
        let (ttc, closure) = decompose(&tl, 1e-6);
        let closure = closure.unwrap();
        assert!(closure.holds, "closure error {}", closure.error_secs);
        // 0-100 queue wait (pilot launching, unit pending), 100-110 agent
        // scheduling (pilot active, unit still pending), 110-120 staging,
        // 120-200 execution, 200-210 staging.
        assert!((ttc.queue_wait_secs - 100.0).abs() < 1e-9);
        assert!((ttc.agent_scheduling_secs - 10.0).abs() < 1e-9);
        assert!((ttc.staging_secs - 20.0).abs() < 1e-9);
        assert!((ttc.execution_secs - 80.0).abs() < 1e-9);
        assert_eq!(ttc.detection_secs, 0.0);
        assert_eq!(ttc.recovery_secs, 0.0);
    }

    #[test]
    fn suspected_execution_counts_as_detection() {
        let mut j = build();
        // Rebuild with a suspicion window covering part of the execution.
        let mut j2 = RunJournal::new();
        for e in j.entries() {
            if matches!(e.event, JournalEvent::RunFinished { .. }) {
                break;
            }
            j2.record(t(e.at_secs), e.event.clone());
        }
        j2.record(
            t(150.0),
            JournalEvent::Detector {
                pilot: 0,
                resource: "alpha".into(),
                verdict: "Suspected".into(),
                silent_secs: 30.0,
            },
        );
        j2.record(
            t(170.0),
            JournalEvent::Detector {
                pilot: 0,
                resource: "alpha".into(),
                verdict: "Recovered".into(),
                silent_secs: 20.0,
            },
        );
        j2.record(t(210.0), JournalEvent::RunFinished { ttc_secs: 210.0 });
        j = j2;

        let tl = reconstruct(&j).unwrap();
        let (ttc, closure) = decompose(&tl, 1e-6);
        assert!(closure.unwrap().holds);
        // The 150-170 suspicion window moves 20 s of execution into
        // detection. (The window edges land mid-exec interval, so order
        // of events within the sweep matters — this is the regression
        // guard for it.)
        assert!((ttc.detection_secs - 20.0).abs() < 1e-9, "{ttc:?}");
        assert!((ttc.execution_secs - 60.0).abs() < 1e-9, "{ttc:?}");
    }

    #[test]
    fn no_finish_means_no_closure() {
        let mut j = RunJournal::new();
        j.record(
            t(0.0),
            JournalEvent::RunStarted {
                seed: 1,
                strategy: "early".into(),
                n_tasks: 1,
            },
        );
        j.record(
            t(5.0),
            JournalEvent::UnitTransition {
                unit: 0,
                state: "PendingExecution".into(),
                pilot: None,
                cores: 1,
            },
        );
        let tl = reconstruct(&j).unwrap();
        let (ttc, closure) = decompose(&tl, 1e-6);
        assert!(closure.is_none());
        // The implicit New interval spans run start to the transition, and
        // New counts as pending: all 5 s are queue wait.
        assert!((ttc.queue_wait_secs - 5.0).abs() < 1e-9);
    }
}
