//! # aimes-analytics — post-mortem session analytics
//!
//! The simulator's artifacts (the crash-consistent run journal, the
//! metrics/trace exports) record *what happened*; this crate turns one
//! run's journal into an *explanation*:
//!
//! * [`timeline`] — per-entity state timelines reconstructed from the
//!   journal's transition log;
//! * [`decompose`] — an exclusive TTC decomposition whose components
//!   partition the run, with a **closure check** (components must sum to
//!   the simulator-reported TTC within ε — a standing consistency oracle
//!   over the whole state model);
//! * [`series`] — concurrency and core-utilization step series derived
//!   purely from timelines, cross-validating the telemetry gauges;
//! * [`critical_path`] — the chain of waits and work that determined the
//!   TTC, each span attributed to a component and an entity;
//! * [`stragglers`] — units whose state dwell exceeds a robust percentile
//!   fence, with the responsible component named;
//! * [`diff`] — run-to-run comparison with regression thresholds (the CI
//!   gate);
//! * [`render`] — markdown rendering of both.
//!
//! The one-call entry points are [`analyze_jsonl`] for a journal file's
//! text and [`analyze`] for an in-memory [`RunJournal`].

pub mod critical_path;
pub mod decompose;
pub mod diff;
pub mod render;
pub mod series;
pub mod stragglers;
pub mod timeline;

use aimes::journal::RunJournal;
use serde::{Deserialize, Serialize};

pub use critical_path::CriticalPath;
pub use decompose::{ClosureCheck, ExclusiveTtc};
pub use diff::DiffReport;
pub use series::StepSeries;
pub use stragglers::{tukey_upper_fence, Straggler};
pub use timeline::{ReconstructError, SessionTimelines};

/// Schema tag written into every serialized analysis.
pub const SCHEMA: &str = "aimes-analytics-v1";

/// Default closure epsilon: the acceptance bound for
/// |Σ components − reported TTC|.
pub const DEFAULT_EPSILON_SECS: f64 = 1e-6;

/// Everything one analysis produces, serializable for artifacts and for
/// `analytics diff` inputs.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct AnalysisReport {
    pub schema: String,
    pub seed: u64,
    pub strategy: String,
    pub n_tasks: u32,
    pub started_at_secs: f64,
    pub finished_at_secs: Option<f64>,
    pub ttc_reported_secs: Option<f64>,
    /// Torn-tail lines the lenient journal reader discarded.
    pub discarded_journal_lines: u64,
    pub ttc: ExclusiveTtc,
    pub closure: Option<ClosureCheck>,
    /// Busy-core integral over active-core integral, while pilots were up.
    pub mean_utilization: f64,
    pub series: Vec<StepSeries>,
    pub critical_path: CriticalPath,
    pub stragglers: Vec<Straggler>,
    pub unit_count: u32,
    pub pilot_count: u32,
    pub restarts: u32,
    pub replans: u32,
    /// Correlated-failure alarms raised on failure domains.
    #[serde(default)]
    pub domain_alarms: u32,
    /// Pilots proactively drained out of alarmed domains.
    #[serde(default)]
    pub evacuations: u32,
    /// Checkpoint boundaries recorded on aborted attempts.
    #[serde(default)]
    pub checkpoints: u32,
    /// Attempts resumed from a checkpoint instead of from scratch.
    #[serde(default)]
    pub resumes: u32,
    /// Seconds from the first domain alarm to the first completed drain.
    #[serde(default)]
    pub evacuation_lead_secs: Option<f64>,
}

impl AnalysisReport {
    /// True when the report's closure check ran and holds.
    pub fn closure_holds(&self) -> bool {
        self.closure.map(|c| c.holds).unwrap_or(false)
    }
}

/// Analyze reconstructed timelines. `discarded` is the torn-tail line
/// count from the lenient reader (0 for in-memory journals).
pub fn analyze_timelines(
    tl: &SessionTimelines,
    epsilon_secs: f64,
    discarded: usize,
) -> AnalysisReport {
    let (ttc, closure) = decompose::decompose(tl, epsilon_secs);
    let series = vec![
        series::executing_units(tl),
        series::busy_cores(tl),
        series::active_pilot_cores(tl),
    ];
    let restarts = tl.units.values().map(|u| u.restarts).sum();
    AnalysisReport {
        schema: SCHEMA.into(),
        seed: tl.seed,
        strategy: tl.strategy.clone(),
        n_tasks: tl.n_tasks,
        started_at_secs: tl.started_at,
        finished_at_secs: tl.finished_at,
        ttc_reported_secs: tl.ttc_reported,
        discarded_journal_lines: discarded as u64,
        ttc,
        closure,
        mean_utilization: series::mean_utilization(tl),
        series,
        critical_path: critical_path::extract(tl),
        stragglers: stragglers::detect(tl),
        unit_count: tl.units.len() as u32,
        pilot_count: tl.pilots.len() as u32,
        restarts,
        replans: tl.replans,
        domain_alarms: tl.domain_alarms,
        evacuations: tl.evacuations,
        checkpoints: tl.checkpoints,
        resumes: tl.resumes,
        evacuation_lead_secs: tl.evacuation_lead_secs,
    }
}

/// Analyze an in-memory journal.
pub fn analyze(
    journal: &RunJournal,
    epsilon_secs: f64,
) -> Result<AnalysisReport, ReconstructError> {
    let tl = timeline::reconstruct(journal)?;
    Ok(analyze_timelines(&tl, epsilon_secs, 0))
}

/// Analyze a journal file's text, via the lenient (torn-tail tolerant)
/// reader; the number of discarded trailing lines is reported in the
/// analysis rather than silently dropped.
pub fn analyze_jsonl(text: &str, epsilon_secs: f64) -> Result<AnalysisReport, ReconstructError> {
    let (journal, discarded) = RunJournal::read_lenient(text);
    let tl = timeline::reconstruct(&journal)?;
    Ok(analyze_timelines(&tl, epsilon_secs, discarded))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimes::journal::JournalEvent;
    use aimes_sim::SimTime;

    fn sample_journal() -> RunJournal {
        let mut j = RunJournal::new();
        let t = SimTime::from_secs;
        j.record(
            t(0.0),
            JournalEvent::RunStarted {
                seed: 3,
                strategy: "early".into(),
                n_tasks: 1,
            },
        );
        j.record(
            t(0.0),
            JournalEvent::PilotTransition {
                pilot: 0,
                state: "PendingLaunch".into(),
                resource: "alpha".into(),
                cores: 4,
            },
        );
        j.record(
            t(20.0),
            JournalEvent::PilotTransition {
                pilot: 0,
                state: "Active".into(),
                resource: "alpha".into(),
                cores: 4,
            },
        );
        j.record(
            t(0.0),
            JournalEvent::UnitTransition {
                unit: 0,
                state: "PendingExecution".into(),
                pilot: None,
                cores: 2,
            },
        );
        j.record(
            t(21.0),
            JournalEvent::UnitTransition {
                unit: 0,
                state: "StagingInput".into(),
                pilot: Some(0),
                cores: 2,
            },
        );
        j.record(
            t(22.0),
            JournalEvent::UnitTransition {
                unit: 0,
                state: "Executing".into(),
                pilot: Some(0),
                cores: 2,
            },
        );
        j.record(
            t(52.0),
            JournalEvent::UnitTransition {
                unit: 0,
                state: "StagingOutput".into(),
                pilot: Some(0),
                cores: 2,
            },
        );
        j.record(
            t(53.0),
            JournalEvent::UnitTransition {
                unit: 0,
                state: "Done".into(),
                pilot: Some(0),
                cores: 2,
            },
        );
        j.record(t(53.0), JournalEvent::RunFinished { ttc_secs: 53.0 });
        j
    }

    #[test]
    fn analysis_report_round_trips_as_json() {
        let report = analyze(&sample_journal(), DEFAULT_EPSILON_SECS).unwrap();
        assert!(report.closure_holds());
        assert_eq!(report.schema, SCHEMA);
        let json = serde_json::to_string(&report).unwrap();
        let back: AnalysisReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }

    #[test]
    fn lenient_analysis_reports_torn_lines() {
        let j = sample_journal();
        let mut text = j.to_jsonl();
        let cut = text.len() - 20;
        text.truncate(cut);
        let report = analyze_jsonl(&text, DEFAULT_EPSILON_SECS).unwrap();
        assert_eq!(report.discarded_journal_lines, 1);
        // The torn journal lost RunFinished: closure is unknowable.
        assert!(report.closure.is_none());
        assert!(!report.closure_holds());
    }

    #[test]
    fn utilization_is_busy_over_active() {
        let report = analyze(&sample_journal(), DEFAULT_EPSILON_SECS).unwrap();
        // Pilot active [20, 53] with 4 cores = 132 core-s; unit busy
        // [22, 52] with 2 cores = 60 core-s.
        assert!((report.mean_utilization - 60.0 / 132.0).abs() < 1e-9);
    }
}
