//! Human-readable rendering of analyses and diffs — markdown tables in
//! the same dialect as `aimes::report`, so `experiments analyze` output
//! pastes straight into an issue.

use crate::diff::DiffReport;
use crate::AnalysisReport;
use aimes::report::markdown_table;
use std::fmt::Write;

fn pct(part: f64, whole: f64) -> String {
    if whole > 0.0 {
        format!("{:.1}%", 100.0 * part / whole)
    } else {
        "-".into()
    }
}

/// Render one analysis as markdown.
pub fn render(r: &AnalysisReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Run analysis — strategy {}, seed {}, {} tasks\n",
        r.strategy, r.seed, r.n_tasks
    );
    match r.ttc_reported_secs {
        Some(ttc) => {
            let _ = writeln!(out, "Reported TTC: {ttc:.3} s");
        }
        None => {
            let _ = writeln!(out, "Reported TTC: (journal torn before RunFinished)");
        }
    }
    if r.discarded_journal_lines > 0 {
        let _ = writeln!(
            out,
            "**Warning:** {} trailing journal line(s) discarded as torn.",
            r.discarded_journal_lines
        );
    }
    match &r.closure {
        Some(c) if c.holds => {
            let _ = writeln!(
                out,
                "TTC closure: **holds** (component sum {:.6} s, error {:.3e} s ≤ ε {:.0e})",
                c.component_sum_secs, c.error_secs, c.epsilon_secs
            );
        }
        Some(c) => {
            let _ = writeln!(
                out,
                "TTC closure: **BROKEN** (component sum {:.6} s vs reported {:.6} s, error {:.3e} s > ε {:.0e})",
                c.component_sum_secs, c.ttc_reported_secs, c.error_secs, c.epsilon_secs
            );
        }
        None => {
            let _ = writeln!(out, "TTC closure: not checkable (no RunFinished)");
        }
    }

    let total = r.ttc.sum_secs();
    let _ = writeln!(out, "\n## Exclusive TTC decomposition\n");
    let rows: Vec<Vec<String>> = r
        .ttc
        .components()
        .iter()
        .map(|(name, secs)| vec![(*name).to_string(), format!("{secs:.3}"), pct(*secs, total)])
        .collect();
    out.push_str(&markdown_table(&["component", "seconds", "share"], &rows));

    let _ = writeln!(
        out,
        "\nMean core-utilization while pilots were active: {:.1}%",
        100.0 * r.mean_utilization
    );
    for s in &r.series {
        let _ = writeln!(out, "Peak {}: {:.0}", s.name, s.peak());
    }

    let _ = writeln!(
        out,
        "\n## Critical path ({:.3} s, digest {})\n",
        r.critical_path.total_secs, r.critical_path.digest
    );
    let rows: Vec<Vec<String>> = r
        .critical_path
        .segments
        .iter()
        .filter(|s| s.dwell_secs() > 0.0)
        .map(|s| {
            vec![
                format!("{:.3}", s.start_secs),
                format!("{:.3}", s.dwell_secs()),
                s.component.clone(),
                s.entity.clone(),
                if s.resource.is_empty() {
                    "-".into()
                } else {
                    s.resource.clone()
                },
                s.detail.clone(),
            ]
        })
        .collect();
    out.push_str(&markdown_table(
        &[
            "start",
            "dwell",
            "component",
            "entity",
            "resource",
            "detail",
        ],
        &rows,
    ));

    let _ = writeln!(out, "\n## Stragglers\n");
    if r.stragglers.is_empty() {
        let _ = writeln!(out, "none");
    } else {
        let rows: Vec<Vec<String>> = r
            .stragglers
            .iter()
            .map(|s| {
                vec![
                    format!("unit {}", s.unit),
                    s.state.clone(),
                    s.component.clone(),
                    format!("{:.3}", s.dwell_secs),
                    format!("{:.3}", s.bound_secs),
                    format!("{:.3}", s.median_secs),
                ]
            })
            .collect();
        out.push_str(&markdown_table(
            &[
                "unit",
                "state",
                "component",
                "dwell s",
                "fence s",
                "median s",
            ],
            &rows,
        ));
    }
    out
}

/// Render a diff as markdown.
pub fn render_diff(d: &DiffReport) -> String {
    let mut out = String::new();
    let _ = writeln!(
        out,
        "# Run comparison (threshold +{:.0}%)\n",
        100.0 * d.threshold
    );
    let rows: Vec<Vec<String>> = d
        .deltas
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                format!("{:.3}", c.a_secs),
                format!("{:.3}", c.b_secs),
                format!("{:+.3}", c.delta_secs),
                format!("{:+.1}%", 100.0 * c.rel_change),
                if c.regressed { "**REGRESSED**" } else { "ok" }.into(),
            ]
        })
        .collect();
    out.push_str(&markdown_table(
        &[
            "quantity", "run A s", "run B s", "delta", "relative", "verdict",
        ],
        &rows,
    ));
    if d.closure_broken {
        let _ = writeln!(
            out,
            "\n**TTC closure broken in at least one input — comparison is not trustworthy.**"
        );
    }
    if d.regressions.is_empty() && !d.closure_broken {
        let _ = writeln!(out, "\nNo regressions.");
    } else if !d.regressions.is_empty() {
        let _ = writeln!(out, "\nRegressions: {}", d.regressions.join(", "));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::reconstruct;
    use aimes::journal::{JournalEvent, RunJournal};
    use aimes_sim::SimTime;

    #[test]
    fn render_covers_every_section() {
        let mut j = RunJournal::new();
        j.record(
            SimTime::from_secs(0.0),
            JournalEvent::RunStarted {
                seed: 9,
                strategy: "late-2p".into(),
                n_tasks: 1,
            },
        );
        j.record(
            SimTime::from_secs(1.0),
            JournalEvent::UnitTransition {
                unit: 0,
                state: "Executing".into(),
                pilot: Some(0),
                cores: 1,
            },
        );
        j.record(
            SimTime::from_secs(11.0),
            JournalEvent::UnitTransition {
                unit: 0,
                state: "Done".into(),
                pilot: Some(0),
                cores: 1,
            },
        );
        j.record(
            SimTime::from_secs(11.0),
            JournalEvent::RunFinished { ttc_secs: 11.0 },
        );
        let tl = reconstruct(&j).unwrap();
        let report = crate::analyze_timelines(&tl, 1e-6, 0);
        let text = render(&report);
        assert!(text.contains("Run analysis"));
        assert!(text.contains("TTC closure: **holds**"));
        assert!(text.contains("Exclusive TTC decomposition"));
        assert!(text.contains("Critical path"));
        assert!(text.contains("Stragglers"));

        let d = crate::diff::diff(&report, &report, 0.1);
        let dt = render_diff(&d);
        assert!(dt.contains("Run comparison"));
        assert!(dt.contains("No regressions."));
    }
}
