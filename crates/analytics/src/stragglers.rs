//! Straggler detection: units whose dwell in one state is an outlier
//! against the population of all units' dwells in that state, by the
//! Tukey fence (p75 + 1.5 × IQR). The responsible component is named so
//! a straggler report reads as a diagnosis, not just a ranking.

use crate::timeline::{SessionTimelines, UnitPhase};
use aimes::stats::percentile;
use serde::{Deserialize, Serialize};

/// One flagged unit.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct Straggler {
    pub unit: u32,
    /// The state whose dwell tripped the fence.
    pub state: String,
    /// Component charged with the excess, matching
    /// [`crate::decompose::ExclusiveTtc`] names.
    pub component: String,
    pub dwell_secs: f64,
    /// The fence it exceeded.
    pub bound_secs: f64,
    /// Population median dwell in this state, for scale.
    pub median_secs: f64,
}

/// The Tukey upper outlier fence, `p75 + 1.5 × IQR`, or `None` for
/// populations smaller than 4 — quartiles of 3 points fence nothing
/// meaningfully. This is the single outlier definition shared by unit
/// straggler detection (here) and campaign-level straggler *runs*
/// (`experiments campaign-report`).
pub fn tukey_upper_fence(sample: &[f64]) -> Option<f64> {
    if sample.len() < 4 {
        return None;
    }
    let p25 = percentile(sample, 0.25)?;
    let p75 = percentile(sample, 0.75)?;
    Some(p75 + 1.5 * (p75 - p25))
}

fn component_for(phase: UnitPhase, restarted: bool) -> &'static str {
    match phase {
        UnitPhase::PendingExecution if restarted => "recovery",
        UnitPhase::PendingExecution => "queue-wait",
        UnitPhase::StagingInput | UnitPhase::StagingOutput => "staging",
        UnitPhase::Executing => "execution",
        UnitPhase::New => "queue-wait",
        _ => "other",
    }
}

/// Flag units whose total dwell in a state exceeds the Tukey upper fence
/// for that state's population. Populations smaller than 4 are skipped —
/// quartiles of 3 points fence nothing meaningfully.
pub fn detect(tl: &SessionTimelines) -> Vec<Straggler> {
    let states = [
        UnitPhase::PendingExecution,
        UnitPhase::StagingInput,
        UnitPhase::Executing,
        UnitPhase::StagingOutput,
    ];
    let mut out = Vec::new();
    for phase in states {
        let dwells: Vec<(u32, f64, bool)> = tl
            .units
            .values()
            .map(|u| {
                let restarted = u.restarts > 0;
                (u.id, u.dwell_in(phase), restarted)
            })
            .filter(|(_, d, _)| *d > 0.0)
            .collect();
        let sample: Vec<f64> = dwells.iter().map(|(_, d, _)| *d).collect();
        let Some(bound) = tukey_upper_fence(&sample) else {
            continue;
        };
        let median = percentile(&sample, 0.50).expect("non-empty");
        for (unit, dwell, restarted) in dwells {
            if dwell > bound + 1e-9 {
                out.push(Straggler {
                    unit,
                    state: phase.to_string(),
                    component: component_for(phase, restarted).into(),
                    dwell_secs: dwell,
                    bound_secs: bound,
                    median_secs: median,
                });
            }
        }
    }
    // Worst excess first; unit id breaks ties deterministically.
    out.sort_by(|a, b| {
        let ea = a.dwell_secs - a.bound_secs;
        let eb = b.dwell_secs - b.bound_secs;
        eb.partial_cmp(&ea)
            .expect("finite dwells")
            .then(a.unit.cmp(&b.unit))
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::timeline::reconstruct;
    use aimes::journal::{JournalEvent, RunJournal};
    use aimes_sim::SimTime;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    #[test]
    fn flags_the_slow_unit_and_names_the_component() {
        let mut j = RunJournal::new();
        j.record(
            t(0.0),
            JournalEvent::RunStarted {
                seed: 1,
                strategy: "early".into(),
                n_tasks: 5,
            },
        );
        // Four normal units execute for 10 s; unit 4 executes for 200 s.
        for u in 0..5u32 {
            let dur = if u == 4 { 200.0 } else { 10.0 };
            j.record(
                t(1.0),
                JournalEvent::UnitTransition {
                    unit: u,
                    state: "Executing".into(),
                    pilot: Some(0),
                    cores: 1,
                },
            );
            j.record(
                t(1.0 + dur),
                JournalEvent::UnitTransition {
                    unit: u,
                    state: "Done".into(),
                    pilot: Some(0),
                    cores: 1,
                },
            );
        }
        j.record(t(201.0), JournalEvent::RunFinished { ttc_secs: 201.0 });
        let tl = reconstruct(&j).unwrap();
        let stragglers = detect(&tl);
        assert_eq!(stragglers.len(), 1);
        assert_eq!(stragglers[0].unit, 4);
        assert_eq!(stragglers[0].state, "Executing");
        assert_eq!(stragglers[0].component, "execution");
        assert!((stragglers[0].dwell_secs - 200.0).abs() < 1e-9);
    }

    #[test]
    fn tukey_fence_matches_hand_computation_and_skips_small_samples() {
        assert_eq!(tukey_upper_fence(&[1.0, 2.0, 3.0]), None);
        // p25 = 1.75, p75 = 3.25 (type-7), IQR = 1.5 → fence = 5.5.
        let fence = tukey_upper_fence(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert!((fence - 5.5).abs() < 1e-12, "fence = {fence}");
    }

    #[test]
    fn small_populations_are_not_fenced() {
        let mut j = RunJournal::new();
        j.record(
            t(0.0),
            JournalEvent::RunStarted {
                seed: 1,
                strategy: "early".into(),
                n_tasks: 2,
            },
        );
        for (u, dur) in [(0u32, 1.0), (1, 1000.0)] {
            j.record(
                t(0.0),
                JournalEvent::UnitTransition {
                    unit: u,
                    state: "Executing".into(),
                    pilot: Some(0),
                    cores: 1,
                },
            );
            j.record(
                t(dur),
                JournalEvent::UnitTransition {
                    unit: u,
                    state: "Done".into(),
                    pilot: Some(0),
                    cores: 1,
                },
            );
        }
        j.record(t(1000.0), JournalEvent::RunFinished { ttc_secs: 1000.0 });
        let tl = reconstruct(&j).unwrap();
        assert!(detect(&tl).is_empty());
    }
}
