//! Pilot state model with instrumented transitions.
//!
//! §III-C: "Timers and introspection tools record each state transition and
//! the state properties of each RADICAL-Pilot component. These capabilities
//! are needed to tailor distributed application execution to diverse use
//! cases, but to the best of our knowledge, they are missing in other pilot
//! systems." Every transition is timestamped; the experiment analysis reads
//! `Tw` (pilot setup + queue time) straight off these records.

use crate::description::PilotDescription;
use aimes_saga::SagaJobId;
use aimes_sim::{SimDuration, SimTime};
use serde::{Deserialize, Serialize};

/// Pilot identifier (manager-scoped).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PilotId(pub u32);

impl std::fmt::Display for PilotId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "pilot.{}", self.0)
    }
}

/// The RADICAL-Pilot state model.
///
/// ```text
/// New ─► PendingLaunch ─► Launching ─► PendingActive ─► Active ─► Done
///                              │             │             ├────► Failed
///                              └────►────────┴──────►──────┴────► Canceled
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum PilotState {
    /// Described, not yet handed to the launcher.
    New,
    /// Waiting for the SAGA submission round-trip.
    PendingLaunch,
    /// Submitted; waiting in the resource's batch queue.
    Launching,
    /// Backend job started; pilot agent bootstrapping.
    PendingActive,
    /// Agent up: accepting and executing units.
    Active,
    /// Reached the end of its walltime or was drained and completed.
    Done,
    Failed,
    Canceled,
}

impl PilotState {
    /// True for states a pilot never leaves.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            PilotState::Done | PilotState::Failed | PilotState::Canceled
        )
    }

    /// Legal transition check.
    pub fn can_transition_to(self, next: PilotState) -> bool {
        use PilotState::*;
        matches!(
            (self, next),
            (New, PendingLaunch)
                | (PendingLaunch, Launching)
                | (PendingLaunch, Failed)
                | (PendingLaunch, Canceled)
                | (Launching, PendingActive)
                | (Launching, Failed)
                | (Launching, Canceled)
                | (PendingActive, Active)
                | (PendingActive, Failed)
                | (PendingActive, Canceled)
                | (Active, Done)
                | (Active, Failed)
                | (Active, Canceled)
        )
    }
}

/// A pilot tracked by the pilot manager.
#[derive(Clone, Debug)]
pub struct Pilot {
    pub id: PilotId,
    pub description: PilotDescription,
    pub state: PilotState,
    /// SAGA job backing this pilot, once submitted.
    pub saga_job: Option<SagaJobId>,
    /// Instrumented state transitions: `(state, time)` in order.
    pub timestamps: Vec<(PilotState, SimTime)>,
}

impl Pilot {
    pub(crate) fn new(id: PilotId, description: PilotDescription, now: SimTime) -> Self {
        Pilot {
            id,
            description,
            state: PilotState::New,
            saga_job: None,
            timestamps: vec![(PilotState::New, now)],
        }
    }

    pub(crate) fn transition(&mut self, next: PilotState, now: SimTime) {
        assert!(
            self.state.can_transition_to(next),
            "illegal pilot transition {:?} -> {:?} for {}",
            self.state,
            next,
            self.id
        );
        self.state = next;
        self.timestamps.push((next, now));
    }

    /// Time of the first occurrence of `state`, if reached.
    pub fn time_of(&self, state: PilotState) -> Option<SimTime> {
        self.timestamps
            .iter()
            .find(|(s, _)| *s == state)
            .map(|(_, t)| *t)
    }

    /// The pilot's setup time: from description (New) to Active — the
    /// paper's per-pilot contribution to Tw, covering middleware
    /// round-trips *and* batch-queue wait.
    pub fn setup_time(&self) -> Option<SimDuration> {
        let new = self.time_of(PilotState::New)?;
        let active = self.time_of(PilotState::Active)?;
        Some(active.since(new))
    }

    /// Queue-only wait: Launching → PendingActive (the batch queue part of
    /// the setup time).
    pub fn queue_wait(&self) -> Option<SimDuration> {
        let launched = self.time_of(PilotState::Launching)?;
        let started = self.time_of(PilotState::PendingActive)?;
        Some(started.since(launched))
    }

    /// When the resource will reclaim the allocation: activation +
    /// walltime.
    pub fn walltime_deadline(&self) -> Option<SimTime> {
        self.time_of(PilotState::Active)
            .map(|t| t + self.description.walltime)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn pilot() -> Pilot {
        Pilot::new(
            PilotId(0),
            PilotDescription::new("stampede", 64, SimDuration::from_hours(2.0)),
            t(0.0),
        )
    }

    #[test]
    fn full_lifecycle_records_timestamps() {
        let mut p = pilot();
        p.transition(PilotState::PendingLaunch, t(1.0));
        p.transition(PilotState::Launching, t(3.0));
        p.transition(PilotState::PendingActive, t(500.0));
        p.transition(PilotState::Active, t(510.0));
        p.transition(PilotState::Done, t(7710.0));
        assert_eq!(p.timestamps.len(), 6);
        assert_eq!(p.setup_time(), Some(SimDuration::from_secs(510.0)));
        assert_eq!(p.queue_wait(), Some(SimDuration::from_secs(497.0)));
        assert_eq!(
            p.walltime_deadline(),
            Some(t(510.0) + SimDuration::from_hours(2.0))
        );
    }

    #[test]
    #[should_panic(expected = "illegal pilot transition")]
    fn illegal_transition_panics() {
        let mut p = pilot();
        p.transition(PilotState::Active, t(1.0));
    }

    #[test]
    fn terminal_states() {
        use PilotState::*;
        for s in [Done, Failed, Canceled] {
            assert!(s.is_terminal());
        }
        for s in [New, PendingLaunch, Launching, PendingActive, Active] {
            assert!(!s.is_terminal());
        }
    }

    #[test]
    fn failures_allowed_from_any_live_submission_state() {
        use PilotState::*;
        assert!(PendingLaunch.can_transition_to(Failed));
        assert!(Launching.can_transition_to(Canceled));
        assert!(PendingActive.can_transition_to(Failed));
        assert!(!Done.can_transition_to(Failed));
    }

    #[test]
    fn setup_time_none_until_active() {
        let mut p = pilot();
        assert!(p.setup_time().is_none());
        p.transition(PilotState::PendingLaunch, t(1.0));
        p.transition(PilotState::Launching, t(2.0));
        assert!(p.setup_time().is_none());
        assert!(p.queue_wait().is_none());
    }
}
