//! The pilot manager: describes pilots, launches them through SAGA, and
//! maintains their instrumented state models (Figure 1, steps 4–5).

use crate::description::PilotDescription;
use crate::pilot::{Pilot, PilotId, PilotState};
use aimes_saga::{JobDescription, SagaJobState, Session};
use aimes_sim::{SimDuration, Simulation};
use std::cell::RefCell;
use std::rc::Rc;

/// Subscriber to pilot state changes.
pub type PilotCallback = Box<dyn FnMut(&mut Simulation, PilotId, PilotState)>;

struct PmState {
    session: Rc<Session>,
    pilots: Vec<Pilot>,
    subscribers: Vec<PilotCallback>,
    /// Agent bootstrap time once the backend job runs (the pilot's own
    /// startup: environment setup, agent launch).
    bootstrap_delay: SimDuration,
}

/// Handle to the pilot manager.
#[derive(Clone)]
pub struct PilotManager {
    inner: Rc<RefCell<PmState>>,
}

impl PilotManager {
    /// Create a manager over a SAGA session.
    pub fn new(session: Rc<Session>) -> Self {
        PilotManager {
            inner: Rc::new(RefCell::new(PmState {
                session,
                pilots: Vec::new(),
                subscribers: Vec::new(),
                bootstrap_delay: SimDuration::from_secs(30.0),
            })),
        }
    }

    /// Override the agent bootstrap delay (default 30 s).
    pub fn set_bootstrap_delay(&self, delay: SimDuration) {
        self.inner.borrow_mut().bootstrap_delay = delay;
    }

    /// Subscribe to all pilot state transitions.
    pub fn subscribe(&self, cb: impl FnMut(&mut Simulation, PilotId, PilotState) + 'static) {
        self.inner.borrow_mut().subscribers.push(Box::new(cb));
    }

    /// Submit pilots. Each is described to the resource named in its
    /// description; unknown resources panic (the Execution Manager selects
    /// resources from the bundle, which mirrors the session).
    pub fn submit(
        &self,
        sim: &mut Simulation,
        descriptions: Vec<PilotDescription>,
    ) -> Vec<PilotId> {
        let mut ids = Vec::with_capacity(descriptions.len());
        for desc in descriptions {
            let id = {
                let mut st = self.inner.borrow_mut();
                let id = PilotId(st.pilots.len() as u32);
                st.pilots.push(Pilot::new(id, desc.clone(), sim.now()));
                id
            };
            ids.push(id);
            self.transition(sim, id, PilotState::PendingLaunch);
            let service = {
                let st = self.inner.borrow();
                st.session
                    .service(&desc.resource)
                    .unwrap_or_else(|| panic!("unknown resource {}", desc.resource))
            };
            let this = self.clone();
            let mut job = JobDescription::new(desc.cores, desc.walltime, id.to_string());
            job.queue = desc.queue.clone();
            let saga_id = service.submit(sim, job, move |sim, state| {
                this.on_saga_state(sim, id, state);
            });
            self.inner.borrow_mut().pilots[id.0 as usize].saga_job = Some(saga_id);
        }
        ids
    }

    fn on_saga_state(&self, sim: &mut Simulation, id: PilotId, state: SagaJobState) {
        let current = self.state(id);
        match state {
            SagaJobState::New => {}
            SagaJobState::Pending => self.transition(sim, id, PilotState::Launching),
            SagaJobState::Running => {
                self.transition(sim, id, PilotState::PendingActive);
                let delay = self.inner.borrow().bootstrap_delay;
                let this = self.clone();
                sim.schedule_in(delay, move |sim| {
                    // The backend job may have died during bootstrap.
                    if this.state(id) == PilotState::PendingActive {
                        this.transition(sim, id, PilotState::Active);
                    }
                });
            }
            SagaJobState::Done => {
                // Walltime reached. If the agent never finished
                // bootstrapping, the pilot failed to deliver.
                match current {
                    PilotState::Active => self.transition(sim, id, PilotState::Done),
                    s if !s.is_terminal() => self.transition(sim, id, PilotState::Failed),
                    _ => {}
                }
            }
            SagaJobState::Failed => {
                if !current.is_terminal() {
                    self.transition(sim, id, PilotState::Failed);
                }
            }
            SagaJobState::Canceled => {
                if !current.is_terminal() {
                    self.transition(sim, id, PilotState::Canceled);
                }
            }
        }
    }

    fn transition(&self, sim: &mut Simulation, id: PilotId, next: PilotState) {
        {
            let mut st = self.inner.borrow_mut();
            st.pilots[id.0 as usize].transition(next, sim.now());
        }
        sim.tracer().record(
            sim.now(),
            id.to_string(),
            format!("{next:?}"),
            self.pilot(id).description.resource.clone(),
        );
        // Deliver to subscribers without holding the borrow.
        let mut subs = std::mem::take(&mut self.inner.borrow_mut().subscribers);
        for cb in subs.iter_mut() {
            cb(sim, id, next);
        }
        let mut st = self.inner.borrow_mut();
        let mut newly = std::mem::take(&mut st.subscribers);
        st.subscribers = subs;
        st.subscribers.append(&mut newly);
    }

    /// Cancel a pilot (drains through SAGA; the state model follows).
    pub fn cancel(&self, sim: &mut Simulation, id: PilotId) {
        let saga = self.pilot(id).saga_job;
        let (service, desc_resource) = {
            let st = self.inner.borrow();
            let p = &st.pilots[id.0 as usize];
            (
                st.session.service(&p.description.resource),
                p.description.resource.clone(),
            )
        };
        let _ = desc_resource;
        if let (Some(service), Some(saga)) = (service, saga) {
            service.cancel(sim, saga);
        }
    }

    /// Cancel every non-terminal pilot (the middleware does this when all
    /// tasks are done, "so as not to waste resources", §III-E).
    pub fn cancel_all(&self, sim: &mut Simulation) {
        let live: Vec<PilotId> = {
            let st = self.inner.borrow();
            st.pilots
                .iter()
                .filter(|p| !p.state.is_terminal())
                .map(|p| p.id)
                .collect()
        };
        for id in live {
            self.cancel(sim, id);
        }
    }

    /// Snapshot of one pilot.
    pub fn pilot(&self, id: PilotId) -> Pilot {
        self.inner.borrow().pilots[id.0 as usize].clone()
    }

    /// Current state of one pilot.
    pub fn state(&self, id: PilotId) -> PilotState {
        self.inner.borrow().pilots[id.0 as usize].state
    }

    /// All pilots (snapshot).
    pub fn pilots(&self) -> Vec<Pilot> {
        self.inner.borrow().pilots.clone()
    }

    /// The SAGA session (shared).
    pub fn session(&self) -> Rc<Session> {
        self.inner.borrow().session.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimes_cluster::{Cluster, ClusterConfig};
    use aimes_sim::SimTime;

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn setup(cores: u32) -> (Simulation, PilotManager) {
        let sim = Simulation::new(17);
        let mut session = Session::new();
        session.add_resource(&sim, Cluster::new(ClusterConfig::test("stampede", cores)));
        let pm = PilotManager::new(Rc::new(session));
        pm.set_bootstrap_delay(d(10.0));
        (sim, pm)
    }

    #[test]
    fn pilot_reaches_active_then_done_at_walltime() {
        let (mut sim, pm) = setup(128);
        let ids = pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 64, d(600.0))],
        );
        sim.run_to_completion();
        let p = pm.pilot(ids[0]);
        assert_eq!(p.state, PilotState::Done);
        let states: Vec<PilotState> = p.timestamps.iter().map(|(s, _)| *s).collect();
        assert_eq!(
            states,
            vec![
                PilotState::New,
                PilotState::PendingLaunch,
                PilotState::Launching,
                PilotState::PendingActive,
                PilotState::Active,
                PilotState::Done
            ]
        );
        // Setup time covers SAGA latency + bootstrap; queue was empty.
        let setup = p.setup_time().unwrap();
        assert!(setup >= d(10.0) && setup < d(20.0), "setup {setup:?}");
        // Done at activation + walltime (the backend kills the job).
        let active = p.time_of(PilotState::Active).unwrap();
        let done = p.time_of(PilotState::Done).unwrap();
        // Active happened bootstrap after Running; the job ends 600 s
        // after it started *running*, i.e. 590 s after Active.
        assert!((done.since(active).as_secs() - 590.0).abs() < 1e-6);
    }

    #[test]
    fn queued_pilot_measures_queue_wait() {
        let (mut sim, pm) = setup(64);
        // Occupy the machine for 500 s so the pilot must wait.
        let cluster = pm.session().service("stampede").unwrap().cluster();
        cluster.submit(
            &mut sim,
            aimes_cluster::JobRequest::background(64, d(500.0), d(500.0)),
        );
        let ids = pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 64, d(100.0))],
        );
        sim.run_to_completion();
        let p = pm.pilot(ids[0]);
        assert_eq!(p.state, PilotState::Done);
        let qw = p.queue_wait().unwrap();
        assert!(
            qw >= d(450.0) && qw <= d(510.0),
            "queue wait {qw:?} should be ~500 s minus submission latency"
        );
    }

    #[test]
    fn subscribers_see_all_transitions() {
        let (mut sim, pm) = setup(64);
        let seen: Rc<RefCell<Vec<(PilotId, PilotState)>>> = Rc::new(RefCell::new(vec![]));
        let s2 = seen.clone();
        pm.subscribe(move |_sim, id, st| s2.borrow_mut().push((id, st)));
        let ids = pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 8, d(60.0))],
        );
        sim.run_to_completion();
        let states: Vec<PilotState> = seen
            .borrow()
            .iter()
            .filter(|(id, _)| *id == ids[0])
            .map(|(_, s)| *s)
            .collect();
        assert_eq!(
            states,
            vec![
                PilotState::PendingLaunch,
                PilotState::Launching,
                PilotState::PendingActive,
                PilotState::Active,
                PilotState::Done
            ]
        );
    }

    #[test]
    fn cancel_while_queued() {
        let (mut sim, pm) = setup(64);
        let cluster = pm.session().service("stampede").unwrap().cluster();
        cluster.submit(
            &mut sim,
            aimes_cluster::JobRequest::background(64, d(5000.0), d(5000.0)),
        );
        let ids = pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 64, d(100.0))],
        );
        let pm2 = pm.clone();
        let id = ids[0];
        sim.schedule_at(SimTime::from_secs(50.0), move |sim| {
            pm2.cancel(sim, id);
        });
        sim.run_to_completion();
        assert_eq!(pm.state(id), PilotState::Canceled);
        // Cancelled long before the blocking job ended.
        let p = pm.pilot(id);
        let cancelled = p.time_of(PilotState::Canceled).unwrap();
        assert!(cancelled.as_secs() < 100.0);
    }

    #[test]
    fn cancel_all_reaps_live_pilots() {
        let (mut sim, pm) = setup(512);
        pm.submit(
            &mut sim,
            vec![
                PilotDescription::new("stampede", 8, d(10_000.0)),
                PilotDescription::new("stampede", 8, d(10_000.0)),
            ],
        );
        let pm2 = pm.clone();
        sim.schedule_at(SimTime::from_secs(100.0), move |sim| {
            pm2.cancel_all(sim);
        });
        sim.run_to_completion();
        for p in pm.pilots() {
            assert_eq!(p.state, PilotState::Canceled);
        }
        assert!(sim.now().as_secs() < 1000.0);
    }

    #[test]
    fn pilot_dying_before_bootstrap_fails() {
        let (mut sim, pm) = setup(64);
        pm.set_bootstrap_delay(d(120.0));
        // Pilot walltime shorter than bootstrap: the backend job ends
        // while the agent is still starting.
        let ids = pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 8, d(60.0))],
        );
        sim.run_to_completion();
        assert_eq!(pm.state(ids[0]), PilotState::Failed);
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn unknown_resource_panics() {
        let (mut sim, pm) = setup(64);
        pm.submit(
            &mut sim,
            vec![PilotDescription::new("nonexistent", 8, d(60.0))],
        );
    }
}
