//! The pilot manager: describes pilots, launches them through SAGA, and
//! maintains their instrumented state models (Figure 1, steps 4–5).

use crate::description::PilotDescription;
use crate::detector::{DetectionPolicy, DetectorEvent, HealthState, SuspicionDetector};
use crate::pilot::{Pilot, PilotId, PilotState};
use aimes_saga::{JobDescription, SagaJobState, Session};
use aimes_sim::{
    DetectorPhase, ManagerPhase, PilotPhase, SimDuration, SimRng, SimTime, Simulation, TraceKind,
};
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// The typed trace kind for a pilot state (names match the legacy
/// free-string events byte for byte).
fn pilot_phase(state: PilotState) -> PilotPhase {
    match state {
        PilotState::New => PilotPhase::New,
        PilotState::PendingLaunch => PilotPhase::PendingLaunch,
        PilotState::Launching => PilotPhase::Launching,
        PilotState::PendingActive => PilotPhase::PendingActive,
        PilotState::Active => PilotPhase::Active,
        PilotState::Done => PilotPhase::Done,
        PilotState::Failed => PilotPhase::Failed,
        PilotState::Canceled => PilotPhase::Canceled,
    }
}

/// Dwell-time histogram name for time spent *in* `state`.
fn dwell_metric(state: PilotState) -> String {
    match state {
        PilotState::New => "pilot.dwell.new",
        PilotState::PendingLaunch => "pilot.dwell.pending_launch",
        PilotState::Launching => "pilot.dwell.launching",
        PilotState::PendingActive => "pilot.dwell.pending_active",
        PilotState::Active => "pilot.dwell.active",
        PilotState::Done => "pilot.dwell.done",
        PilotState::Failed => "pilot.dwell.failed",
        PilotState::Canceled => "pilot.dwell.canceled",
    }
    .to_string()
}

/// Subscriber to pilot state changes.
pub type PilotCallback = Box<dyn FnMut(&mut Simulation, PilotId, PilotState)>;

/// Subscriber to manager-initiated blacklisting (repeated launch failures).
pub type BlacklistCallback = Box<dyn FnMut(&mut Simulation, &str)>;

/// Subscriber to detector events (suspicions, declarations, recoveries,
/// stale signals) — the middleware journals these.
pub type DetectorCallback = Box<dyn FnMut(&mut Simulation, &DetectorEvent)>;

/// Subscriber to *physical* agent death (environment side, not a client
/// signal — see [`PilotManager::on_pilot_silent`]).
pub type SilentCallback = Box<dyn FnMut(&mut Simulation, PilotId)>;

/// An injected heartbeat-delivery delay window: signal-level fault
/// injection for false-positive scenarios (congested WAN, overloaded
/// login node) without touching pilot liveness.
struct HeartbeatDelayWindow {
    resource: String,
    from: SimTime,
    until: SimTime,
    delay: SimDuration,
}

/// Self-healing policy: when a pilot fails, submit a replacement after a
/// capped exponential backoff, up to a per-lineage cap. Resources that eat
/// pilots without ever activating one are blacklisted. With `reroute` set,
/// replacements for pilots of a blacklisted resource move to the first
/// surviving resource; without it such failures are left to a higher layer
/// (the middleware's re-planning owns cross-resource recovery).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PilotRecovery {
    /// How many times one original pilot may be replaced before giving up.
    pub max_replacements: u32,
    /// Delay before the first replacement of a lineage.
    pub backoff: SimDuration,
    /// Ceiling for the exponentially growing backoff.
    pub backoff_cap: SimDuration,
    /// Consecutive launch failures (never reaching Active) before a
    /// resource is blacklisted.
    pub blacklist_after: u32,
    /// Whether replacements may move off a blacklisted resource.
    pub reroute: bool,
}

impl Default for PilotRecovery {
    fn default() -> Self {
        PilotRecovery {
            max_replacements: 3,
            backoff: SimDuration::from_secs(60.0),
            backoff_cap: SimDuration::from_secs(900.0),
            blacklist_after: 3,
            reroute: true,
        }
    }
}

impl PilotRecovery {
    /// Backoff before replacing generation `generation` (0-based):
    /// `backoff * 2^generation`, capped.
    pub fn delay(&self, generation: u32) -> SimDuration {
        let factor = 2.0_f64.powi(generation.min(30) as i32);
        (self.backoff * factor).min(self.backoff_cap)
    }
}

struct PmState {
    session: Rc<Session>,
    pilots: Vec<Pilot>,
    subscribers: Vec<PilotCallback>,
    /// Notified when the manager itself blacklists a resource after
    /// repeated launch failures (not when [`PilotManager::blacklist`] is
    /// called from outside — the caller already knows).
    blacklist_subscribers: Vec<BlacklistCallback>,
    /// Agent bootstrap time once the backend job runs (the pilot's own
    /// startup: environment setup, agent launch).
    bootstrap_delay: SimDuration,
    /// Self-healing policy; `None` (default) preserves the legacy
    /// fail-and-forget behavior exactly.
    recovery: Option<PilotRecovery>,
    /// Replacement generation per pilot (absent = 0: an original).
    lineage: HashMap<PilotId, u32>,
    /// Consecutive launch failures per resource (reset on any activation).
    launch_failures: HashMap<String, u32>,
    /// Resources no replacement is routed to.
    blacklist: HashSet<String>,
    /// Set by `cancel_all`: the run is winding down, stop healing.
    draining: bool,
    /// Replacement pilots awaiting activation → when their predecessor
    /// failed (for time-to-recovery measurement).
    pending_recovery: HashMap<PilotId, SimTime>,
    /// Completed failure→replacement-active intervals.
    recovery_times: Vec<SimDuration>,
    /// Total replacement pilots submitted.
    replacements: u64,
    /// Failure detection from observable signals; `None` (default) keeps
    /// the legacy oracle behavior and its exact event/RNG streams.
    detector: Option<SuspicionDetector>,
    /// Heartbeat delivery jitter, forked lazily so detection-off runs
    /// leave the RNG tree untouched.
    hb_rng: Option<SimRng>,
    /// Ground truth: pilots whose backend job died while Active, awaiting
    /// a detector verdict. Used for Td accounting only — never consulted
    /// by a recovery decision.
    went_silent: HashMap<PilotId, SimTime>,
    /// Completed (silent_at, declared_at) windows.
    detection_windows: Vec<(SimTime, SimTime)>,
    /// Injected heartbeat-delivery delay windows.
    hb_delays: Vec<HeartbeatDelayWindow>,
    detector_subscribers: Vec<DetectorCallback>,
    silent_subscribers: Vec<SilentCallback>,
    /// Signals dropped because their target was terminal or blacklisted.
    stale_signals: u64,
}

/// Handle to the pilot manager.
#[derive(Clone)]
pub struct PilotManager {
    inner: Rc<RefCell<PmState>>,
}

impl PilotManager {
    /// Create a manager over a SAGA session.
    pub fn new(session: Rc<Session>) -> Self {
        PilotManager {
            inner: Rc::new(RefCell::new(PmState {
                session,
                pilots: Vec::new(),
                subscribers: Vec::new(),
                blacklist_subscribers: Vec::new(),
                bootstrap_delay: SimDuration::from_secs(30.0),
                recovery: None,
                lineage: HashMap::new(),
                launch_failures: HashMap::new(),
                blacklist: HashSet::new(),
                draining: false,
                pending_recovery: HashMap::new(),
                recovery_times: Vec::new(),
                replacements: 0,
                detector: None,
                hb_rng: None,
                went_silent: HashMap::new(),
                detection_windows: Vec::new(),
                hb_delays: Vec::new(),
                detector_subscribers: Vec::new(),
                silent_subscribers: Vec::new(),
                stale_signals: 0,
            })),
        }
    }

    /// Override the agent bootstrap delay (default 30 s).
    pub fn set_bootstrap_delay(&self, delay: SimDuration) {
        self.inner.borrow_mut().bootstrap_delay = delay;
    }

    /// Enable self-healing: failed pilots are replaced per `policy`.
    pub fn set_recovery(&self, policy: PilotRecovery) {
        self.inner.borrow_mut().recovery = Some(policy);
    }

    /// Enable signal-based failure detection: active pilots heartbeat
    /// through the SAGA channel and a silent backend death is only acted
    /// on once the suspicion detector declares it (the client never sees
    /// fault-injection ground truth). Call before submitting pilots.
    pub fn set_detection(&self, policy: DetectionPolicy) {
        self.inner.borrow_mut().detector = Some(SuspicionDetector::new(policy));
    }

    /// Is signal-based detection armed?
    pub fn detection_enabled(&self) -> bool {
        self.inner.borrow().detector.is_some()
    }

    /// Subscribe to detector events (suspicions, recoveries,
    /// declarations, stale signals).
    pub fn on_detector_event(&self, cb: impl FnMut(&mut Simulation, &DetectorEvent) + 'static) {
        self.inner
            .borrow_mut()
            .detector_subscribers
            .push(Box::new(cb));
    }

    /// Subscribe to *physical* agent death. This is the environment side
    /// of the simulation, not an observable signal: when a machine dies,
    /// the executions on it stop at that instant even though no client
    /// component learns of it until the detector declares. The unit
    /// manager uses this to stop in-flight completions from firing on a
    /// dead machine; recovery decisions must key off the declared
    /// `Failed` transition instead.
    pub fn on_pilot_silent(&self, cb: impl FnMut(&mut Simulation, PilotId) + 'static) {
        self.inner
            .borrow_mut()
            .silent_subscribers
            .push(Box::new(cb));
    }

    /// Delay heartbeat *delivery* (not emission) for a resource inside
    /// `[from, until)` by `delay`: signal-level fault injection for
    /// false-positive scenarios.
    pub fn inject_heartbeat_delay(
        &self,
        resource: &str,
        from: SimTime,
        until: SimTime,
        delay: SimDuration,
    ) {
        self.inner
            .borrow_mut()
            .hb_delays
            .push(HeartbeatDelayWindow {
                resource: resource.to_string(),
                from,
                until,
                delay,
            });
    }

    /// Completed silent-death → declaration intervals (Td samples).
    pub fn detection_times(&self) -> Vec<SimDuration> {
        self.inner
            .borrow()
            .detection_windows
            .iter()
            .map(|(from, to)| to.saturating_since(*from))
            .collect()
    }

    /// Completed (silent_at, declared_at) windows for TTC decomposition.
    pub fn detection_windows(&self) -> Vec<(SimTime, SimTime)> {
        self.inner.borrow().detection_windows.clone()
    }

    /// Suspicions cleared by a resumed heartbeat (false positives).
    pub fn false_suspicions(&self) -> u64 {
        self.inner
            .borrow()
            .detector
            .as_ref()
            .map_or(0, |d| d.false_positives())
    }

    /// Heartbeats/status answers dropped because their target was already
    /// terminal or its resource blacklisted.
    pub fn stale_signals(&self) -> u64 {
        self.inner.borrow().stale_signals
    }

    /// Exclude a resource from replacement routing (e.g. the middleware
    /// learned it is permanently lost).
    pub fn blacklist(&self, resource: &str) {
        self.inner
            .borrow_mut()
            .blacklist
            .insert(resource.to_string());
    }

    /// Resources currently excluded from replacement routing.
    pub fn blacklisted(&self) -> Vec<String> {
        let mut v: Vec<String> = self.inner.borrow().blacklist.iter().cloned().collect();
        v.sort();
        v
    }

    /// Total replacement pilots submitted so far.
    pub fn replacements(&self) -> u64 {
        self.inner.borrow().replacements
    }

    /// Measured failure → replacement-active intervals, in completion
    /// order.
    pub fn recovery_times(&self) -> Vec<SimDuration> {
        self.inner.borrow().recovery_times.clone()
    }

    /// Subscribe to all pilot state transitions.
    pub fn subscribe(&self, cb: impl FnMut(&mut Simulation, PilotId, PilotState) + 'static) {
        self.inner.borrow_mut().subscribers.push(Box::new(cb));
    }

    /// Subscribe to blacklist decisions the manager makes on its own
    /// (a resource ate [`PilotRecovery::blacklist_after`] consecutive
    /// launches). Without `reroute`, recovery from such a resource is the
    /// subscriber's job — the middleware uses this to trigger re-planning.
    pub fn on_blacklist(&self, cb: impl FnMut(&mut Simulation, &str) + 'static) {
        self.inner
            .borrow_mut()
            .blacklist_subscribers
            .push(Box::new(cb));
    }

    /// Submit pilots. Each is described to the resource named in its
    /// description; unknown resources panic (the Execution Manager selects
    /// resources from the bundle, which mirrors the session).
    pub fn submit(
        &self,
        sim: &mut Simulation,
        descriptions: Vec<PilotDescription>,
    ) -> Vec<PilotId> {
        let mut ids = Vec::with_capacity(descriptions.len());
        for desc in descriptions {
            let id = {
                let mut st = self.inner.borrow_mut();
                let id = PilotId(st.pilots.len() as u32);
                st.pilots.push(Pilot::new(id, desc.clone(), sim.now()));
                id
            };
            ids.push(id);
            self.transition(sim, id, PilotState::PendingLaunch);
            let service = {
                let st = self.inner.borrow();
                st.session
                    .service(&desc.resource)
                    .unwrap_or_else(|| panic!("unknown resource {}", desc.resource))
            };
            let this = self.clone();
            let mut job = JobDescription::new(desc.cores, desc.walltime, id.to_string());
            job.queue = desc.queue.clone();
            let saga_id = service.submit(sim, job, move |sim, state| {
                this.on_saga_state(sim, id, state);
            });
            self.inner.borrow_mut().pilots[id.0 as usize].saga_job = Some(saga_id);
        }
        ids
    }

    fn on_saga_state(&self, sim: &mut Simulation, id: PilotId, state: SagaJobState) {
        let _prof = sim.profiler().scope("pilot.manager");
        let current = self.state(id);
        match state {
            SagaJobState::New => {}
            SagaJobState::Pending => self.transition(sim, id, PilotState::Launching),
            SagaJobState::Running => {
                self.transition(sim, id, PilotState::PendingActive);
                let delay = self.inner.borrow().bootstrap_delay;
                let this = self.clone();
                sim.schedule_in(delay, move |sim| {
                    // The backend job may have died during bootstrap.
                    if this.state(id) == PilotState::PendingActive {
                        this.transition(sim, id, PilotState::Active);
                    }
                });
            }
            SagaJobState::Done => {
                // Walltime reached. If the agent never finished
                // bootstrapping, the pilot failed to deliver.
                match current {
                    PilotState::Active => self.transition(sim, id, PilotState::Done),
                    s if !s.is_terminal() => self.transition(sim, id, PilotState::Failed),
                    _ => {}
                }
            }
            SagaJobState::Failed => {
                // With detection armed, an *Active* pilot's backend death
                // is silent: no signal reaches the client (the agent just
                // stops heartbeating), so no client-visible transition
                // happens until the detector declares. Pre-Active
                // failures stay immediate — a failed submission is an
                // observable error return. The ground-truth instant is
                // kept for Td accounting only.
                let suppress =
                    self.inner.borrow().detector.is_some() && current == PilotState::Active;
                if suppress {
                    self.inner
                        .borrow_mut()
                        .went_silent
                        .entry(id)
                        .or_insert(sim.now());
                    sim.tracer().record_with(sim.now(), || {
                        (
                            id.to_string(),
                            TraceKind::Detector(DetectorPhase::WentSilent),
                            self.pilot(id).description.resource.clone(),
                        )
                    });
                    self.fire_pilot_silent(sim, id);
                } else if !current.is_terminal() {
                    self.transition(sim, id, PilotState::Failed);
                }
            }
            SagaJobState::Canceled => {
                if !current.is_terminal() {
                    self.transition(sim, id, PilotState::Canceled);
                }
            }
        }
    }

    fn transition(&self, sim: &mut Simulation, id: PilotId, next: PilotState) {
        {
            let mut st = self.inner.borrow_mut();
            let pilot = &mut st.pilots[id.0 as usize];
            let prev = pilot.state;
            if let Some(&(_, entered)) = pilot.timestamps.last() {
                let dwell = sim.now().saturating_since(entered);
                sim.metrics()
                    .observe(dwell.as_secs(), || dwell_metric(prev));
            }
            pilot.transition(next, sim.now());
            if next.is_terminal() {
                if let Some(det) = st.detector.as_mut() {
                    det.deregister(id);
                }
            }
        }
        sim.tracer().record_with(sim.now(), || {
            (
                id.to_string(),
                TraceKind::Pilot(pilot_phase(next)),
                self.pilot(id).description.resource.clone(),
            )
        });
        // Deliver to subscribers without holding the borrow.
        let mut subs = std::mem::take(&mut self.inner.borrow_mut().subscribers);
        for cb in subs.iter_mut() {
            cb(sim, id, next);
        }
        {
            let mut st = self.inner.borrow_mut();
            let mut newly = std::mem::take(&mut st.subscribers);
            st.subscribers = subs;
            st.subscribers.append(&mut newly);
        }
        match next {
            PilotState::Active => {
                self.on_pilot_active(sim, id);
                self.start_heartbeats(sim, id);
            }
            PilotState::Failed => self.heal_pilot_failure(sim, id),
            _ => {}
        }
    }

    /// Deliver a detector event to subscribers (re-entrancy-safe).
    fn fire_detector_event(&self, sim: &mut Simulation, event: &DetectorEvent) {
        let mut subs = std::mem::take(&mut self.inner.borrow_mut().detector_subscribers);
        for cb in subs.iter_mut() {
            cb(sim, event);
        }
        let mut st = self.inner.borrow_mut();
        let mut newly = std::mem::take(&mut st.detector_subscribers);
        st.detector_subscribers = subs;
        st.detector_subscribers.append(&mut newly);
    }

    /// Deliver a physical silent-death notification (re-entrancy-safe).
    fn fire_pilot_silent(&self, sim: &mut Simulation, id: PilotId) {
        let mut subs = std::mem::take(&mut self.inner.borrow_mut().silent_subscribers);
        for cb in subs.iter_mut() {
            cb(sim, id);
        }
        let mut st = self.inner.borrow_mut();
        let mut newly = std::mem::take(&mut st.silent_subscribers);
        st.silent_subscribers = subs;
        st.silent_subscribers.append(&mut newly);
    }

    /// Start the heartbeat loop and suspicion clock for a freshly active
    /// pilot (no-op without detection).
    fn start_heartbeats(&self, sim: &mut Simulation, id: PilotId) {
        let interval = {
            let mut st = self.inner.borrow_mut();
            let resource = st.pilots[id.0 as usize].description.resource.clone();
            let Some(det) = st.detector.as_mut() else {
                return;
            };
            det.register(id, resource, sim.now());
            det.policy().heartbeat_interval
        };
        let this = self.clone();
        sim.schedule_in(interval, move |sim| this.emit_heartbeat(sim, id));
        self.schedule_detector_check(sim, id);
    }

    /// Agent side: emit one heartbeat if the agent is physically alive,
    /// then schedule the next. A dead or terminal agent emits nothing —
    /// that silence *is* the failure signal.
    fn emit_heartbeat(&self, sim: &mut Simulation, id: PilotId) {
        let _prof = sim.profiler().scope("pilot.manager");
        let now = sim.now();
        let (latency, interval) = {
            let mut st = self.inner.borrow_mut();
            let st = &mut *st;
            let pilot = &st.pilots[id.0 as usize];
            let alive = pilot.state == PilotState::Active && !st.went_silent.contains_key(&id);
            if !alive {
                return;
            }
            let Some(det) = st.detector.as_ref() else {
                return;
            };
            let interval = det.policy().heartbeat_interval;
            let resource = &pilot.description.resource;
            // Delivery latency: WAN jitter plus any injected delay window
            // covering this emission.
            let rng = st
                .hb_rng
                .get_or_insert_with(|| sim.fork_rng("pm.heartbeats"));
            let mut latency = SimDuration::from_secs(rng.uniform(0.05, 0.45));
            for w in &st.hb_delays {
                if w.resource == *resource && now >= w.from && now < w.until {
                    latency += w.delay;
                }
            }
            (latency, interval)
        };
        sim.metrics().inc(|| "pilot.heartbeat.emitted".into());
        let this = self.clone();
        sim.schedule_in(latency, move |sim| this.deliver_heartbeat(sim, id));
        let this = self.clone();
        sim.schedule_in(interval, move |sim| this.emit_heartbeat(sim, id));
    }

    /// Client side: a heartbeat arrived. Stale signals — for a pilot
    /// already terminal or a blacklisted resource — are dropped with a
    /// note instead of resurrecting anything.
    fn deliver_heartbeat(&self, sim: &mut Simulation, id: PilotId) {
        let _prof = sim.profiler().scope("pilot.manager");
        let now = sim.now();
        enum Disposition {
            Stale(String),
            Fresh,
        }
        let (resource, disposition) = {
            let st = self.inner.borrow();
            let pilot = &st.pilots[id.0 as usize];
            let resource = pilot.description.resource.clone();
            if pilot.state.is_terminal() {
                let detail = format!("pilot already {:?}", pilot.state);
                (resource, Disposition::Stale(detail))
            } else if st.blacklist.contains(&resource) {
                let detail = format!("resource {resource} blacklisted");
                (resource, Disposition::Stale(detail))
            } else {
                (resource, Disposition::Fresh)
            }
        };
        match disposition {
            Disposition::Stale(detail) => {
                self.inner.borrow_mut().stale_signals += 1;
                sim.metrics().inc(|| "pilot.heartbeat.stale".into());
                sim.tracer().record_with(now, || {
                    (
                        id.to_string(),
                        TraceKind::Detector(DetectorPhase::StaleHeartbeat),
                        detail.clone(),
                    )
                });
                self.fire_detector_event(
                    sim,
                    &DetectorEvent::StaleSignal {
                        pilot: id,
                        resource,
                        detail,
                    },
                );
            }
            Disposition::Fresh => {
                sim.metrics().inc(|| "pilot.heartbeat.delivered".into());
                let recovered = {
                    let mut st = self.inner.borrow_mut();
                    let Some(det) = st.detector.as_mut() else {
                        return;
                    };
                    det.heartbeat(id, now).and_then(|o| o.recovered)
                };
                if let Some(suspected_for) = recovered {
                    sim.metrics()
                        .inc(|| "pilot.detector.suspicion_cleared".into());
                    sim.tracer().record_with(now, || {
                        (
                            id.to_string(),
                            TraceKind::Detector(DetectorPhase::SuspicionCleared),
                            format!("heartbeat resumed after {:.0}s", suspected_for.as_secs()),
                        )
                    });
                    self.fire_detector_event(
                        sim,
                        &DetectorEvent::Recovered {
                            pilot: id,
                            resource,
                            suspected_for,
                        },
                    );
                }
                self.schedule_detector_check(sim, id);
            }
        }
    }

    /// Arm the next suspicion check at the pilot's current deadline.
    /// Checks carry the epoch they were armed under: a later heartbeat
    /// bumps the epoch and the check no-ops when it fires.
    fn schedule_detector_check(&self, sim: &mut Simulation, id: PilotId) {
        let Some((deadline, epoch)) = ({
            let st = self.inner.borrow();
            st.detector
                .as_ref()
                .and_then(|d| d.next_deadline(id).map(|t| (t, d.epoch(id))))
        }) else {
            return;
        };
        let this = self.clone();
        sim.schedule_at(deadline, move |sim| this.run_detector_check(sim, id, epoch));
    }

    /// A suspicion deadline fired: advance the detector if no newer
    /// heartbeat superseded the check.
    fn run_detector_check(&self, sim: &mut Simulation, id: PilotId, epoch: u64) {
        let _prof = sim.profiler().scope("pilot.manager");
        let now = sim.now();
        let advanced = {
            let mut st = self.inner.borrow_mut();
            let Some(det) = st.detector.as_mut() else {
                return;
            };
            if det.health(id).is_none() || det.epoch(id) != epoch {
                return;
            }
            det.advance(id, now)
        };
        match advanced {
            None | Some(HealthState::Healthy) => {}
            Some(HealthState::Suspected) => {
                let (resource, silent_for, confirm) = {
                    let st = self.inner.borrow();
                    let det = st.detector.as_ref().expect("detector just advanced");
                    let v = det.verdicts().last().expect("advance recorded a verdict");
                    (
                        v.resource.clone(),
                        v.silent_for,
                        det.policy().confirm_with_status_query,
                    )
                };
                sim.metrics().inc(|| "pilot.detector.suspected".into());
                sim.tracer().record_with(now, || {
                    (
                        id.to_string(),
                        TraceKind::Detector(DetectorPhase::Suspected),
                        format!("{resource}: silent {:.0}s", silent_for.as_secs()),
                    )
                });
                self.fire_detector_event(
                    sim,
                    &DetectorEvent::Suspected {
                        pilot: id,
                        resource,
                        silent_for,
                    },
                );
                if confirm {
                    self.confirm_via_status_query(sim, id, epoch);
                }
                // The declare deadline stands regardless of the query.
                self.schedule_detector_check(sim, id);
            }
            Some(HealthState::DeclaredDead) => self.on_declared_dead(sim, id),
        }
    }

    /// Ask the batch front end about the suspect's job. A terminal answer
    /// declares immediately (short Td); a healthy answer leaves the pilot
    /// Suspected awaiting resumed heartbeats; an unreachable front end
    /// (typed error, breaker trip) lets the declare deadline decide.
    fn confirm_via_status_query(&self, sim: &mut Simulation, id: PilotId, epoch: u64) {
        let (service, saga) = {
            let st = self.inner.borrow();
            let p = &st.pilots[id.0 as usize];
            (st.session.service(&p.description.resource), p.saga_job)
        };
        let (Some(service), Some(saga)) = (service, saga) else {
            return;
        };
        let this = self.clone();
        service.query_status(sim, saga, move |sim, answer| {
            let still_suspect = {
                let st = this.inner.borrow();
                st.detector.as_ref().is_some_and(|d| {
                    d.health(id) == Some(HealthState::Suspected) && d.epoch(id) == epoch
                })
            };
            if !still_suspect {
                return;
            }
            match answer {
                Ok(state) if state.is_terminal() => {
                    sim.tracer().record_with(sim.now(), || {
                        (
                            id.to_string(),
                            TraceKind::Detector(DetectorPhase::StatusConfirmedDead),
                            format!("front end reports {state:?}"),
                        )
                    });
                    let declared = {
                        let mut st = this.inner.borrow_mut();
                        let det = st.detector.as_mut().expect("still suspect");
                        det.declare(id, sim.now()).is_some()
                    };
                    if declared {
                        this.on_declared_dead(sim, id);
                    }
                }
                // Front end says the job is alive: keep the suspicion and
                // wait for heartbeats (or the declare deadline).
                Ok(_) => {}
                // Unreachable front end: the failed round-trips already
                // fed the circuit breaker; the declare deadline decides.
                Err(_) => {}
            }
        });
    }

    /// The detector gave up on a pilot: record Td, notify, and drive the
    /// client-visible state machine — from here the normal heal path
    /// (replacement, blacklist, re-plan) takes over, having consumed only
    /// signals.
    fn on_declared_dead(&self, sim: &mut Simulation, id: PilotId) {
        let now = sim.now();
        let (resource, silent_for) = {
            let mut st = self.inner.borrow_mut();
            let resource = st.pilots[id.0 as usize].description.resource.clone();
            // Td window start: ground-truth death when one exists (real
            // failure). A false declaration of a live pilot has no death
            // instant, so its window is empty — it costs Tr, not Td.
            let start = st.went_silent.remove(&id).unwrap_or(now);
            st.detection_windows.push((start, now));
            let silent_for = st
                .detector
                .as_ref()
                .and_then(|d| d.verdicts().last())
                .map(|v| v.silent_for)
                .unwrap_or(SimDuration::ZERO);
            (resource, silent_for)
        };
        sim.metrics().inc(|| "pilot.detector.declared_dead".into());
        sim.tracer().record_with(now, || {
            (
                id.to_string(),
                TraceKind::Detector(DetectorPhase::DeclaredDead),
                format!("{resource}: silent {:.0}s", silent_for.as_secs()),
            )
        });
        self.fire_detector_event(
            sim,
            &DetectorEvent::DeclaredDead {
                pilot: id,
                resource,
                silent_for,
            },
        );
        if !self.state(id).is_terminal() {
            self.transition(sim, id, PilotState::Failed);
        }
    }

    /// Activation bookkeeping for self-healing: the resource proved it can
    /// launch pilots, and a pending replacement completes its recovery.
    fn on_pilot_active(&self, sim: &mut Simulation, id: PilotId) {
        let mut st = self.inner.borrow_mut();
        if st.recovery.is_none() {
            return;
        }
        let resource = st.pilots[id.0 as usize].description.resource.clone();
        st.launch_failures.remove(&resource);
        if let Some(failed_at) = st.pending_recovery.remove(&id) {
            let ttr = sim.now().saturating_since(failed_at);
            st.recovery_times.push(ttr);
        }
    }

    /// The self-healing path: replace a failed pilot after a capped
    /// exponential backoff, blacklisting resources that repeatedly fail
    /// pilots before activation.
    fn heal_pilot_failure(&self, sim: &mut Simulation, id: PilotId) {
        let now = sim.now();
        enum Verdict {
            Skip,
            Exhausted,
            Replace { delay: SimDuration, generation: u32 },
        }
        let (verdict, newly_blacklisted) = {
            let mut st = self.inner.borrow_mut();
            let Some(policy) = st.recovery else {
                return;
            };
            if st.draining {
                return;
            }
            let pilot = &st.pilots[id.0 as usize];
            let resource = pilot.description.resource.clone();
            let reached_active = pilot.time_of(PilotState::Active).is_some();
            // A replacement that never activates must not count twice.
            st.pending_recovery.remove(&id);
            let mut newly_blacklisted = false;
            if !reached_active {
                let n = st.launch_failures.entry(resource.clone()).or_insert(0);
                *n += 1;
                if *n >= policy.blacklist_after && st.blacklist.insert(resource.clone()) {
                    newly_blacklisted = true;
                }
            }
            let generation = st.lineage.get(&id).copied().unwrap_or(0);
            let verdict = if st.blacklist.contains(&resource) && !policy.reroute {
                // A higher layer (re-planning) owns recovery from lost
                // resources.
                Verdict::Skip
            } else if generation >= policy.max_replacements {
                Verdict::Exhausted
            } else {
                Verdict::Replace {
                    delay: policy.delay(generation),
                    generation,
                }
            };
            (verdict, newly_blacklisted)
        };
        let resource = self.pilot(id).description.resource.clone();
        if newly_blacklisted {
            sim.metrics().inc(|| "pilot.manager.blacklists".into());
            sim.tracer().record_with(now, || {
                (
                    "pilot-manager".into(),
                    TraceKind::Manager(ManagerPhase::Blacklist),
                    format!("{resource}: repeated launch failures"),
                )
            });
            // Without reroute the verdict below is Skip: a higher layer
            // must take over, so tell it the resource is gone. Delivered
            // without holding the borrow; callbacks may submit pilots.
            let mut subs = std::mem::take(&mut self.inner.borrow_mut().blacklist_subscribers);
            for cb in subs.iter_mut() {
                cb(sim, &resource);
            }
            {
                let mut st = self.inner.borrow_mut();
                let mut newly = std::mem::take(&mut st.blacklist_subscribers);
                st.blacklist_subscribers = subs;
                st.blacklist_subscribers.append(&mut newly);
            }
        }
        match verdict {
            Verdict::Skip => {}
            Verdict::Exhausted => {
                sim.metrics()
                    .inc(|| "pilot.manager.recovery_exhausted".into());
                sim.tracer().record_with(now, || {
                    (
                        "pilot-manager".into(),
                        TraceKind::Manager(ManagerPhase::RecoveryExhausted),
                        format!("{id} on {resource}: replacement cap reached"),
                    )
                });
            }
            Verdict::Replace { delay, generation } => {
                sim.tracer().record_with(now, || {
                    (
                        "pilot-manager".into(),
                        TraceKind::Manager(ManagerPhase::ScheduleReplacement),
                        format!("{id} gen {generation} in {:.0}s", delay.as_secs()),
                    )
                });
                let this = self.clone();
                sim.schedule_in(delay, move |sim| {
                    this.submit_replacement(sim, id, generation, now);
                });
            }
        }
    }

    /// Submit the replacement for `failed` (its failure observed at
    /// `failed_at`), rerouting off blacklisted resources when allowed.
    fn submit_replacement(
        &self,
        sim: &mut Simulation,
        failed: PilotId,
        generation: u32,
        failed_at: SimTime,
    ) {
        let desc = {
            let st = self.inner.borrow();
            if st.draining {
                return;
            }
            let mut desc = st.pilots[failed.0 as usize].description.clone();
            if st.blacklist.contains(&desc.resource) {
                let survivor = st
                    .session
                    .resources()
                    .into_iter()
                    .find(|r| !st.blacklist.contains(r));
                match survivor {
                    Some(r) => {
                        // Queue names are per-resource; fall back to the
                        // survivor's default queue.
                        desc.resource = r;
                        desc.queue = None;
                    }
                    None => {
                        drop(st);
                        sim.metrics()
                            .inc(|| "pilot.manager.recovery_exhausted".into());
                        sim.tracer().record_with(sim.now(), || {
                            (
                                "pilot-manager".into(),
                                TraceKind::Manager(ManagerPhase::RecoveryExhausted),
                                format!("{failed}: every resource blacklisted"),
                            )
                        });
                        return;
                    }
                }
            }
            desc
        };
        let new_ids = self.submit(sim, vec![desc]);
        sim.metrics()
            .inc_by(new_ids.len() as u64, || "pilot.manager.replacements".into());
        let mut st = self.inner.borrow_mut();
        for nid in new_ids {
            st.lineage.insert(nid, generation + 1);
            st.pending_recovery.insert(nid, failed_at);
            st.replacements += 1;
        }
    }

    /// Cancel a pilot (drains through SAGA; the state model follows).
    pub fn cancel(&self, sim: &mut Simulation, id: PilotId) {
        let saga = self.pilot(id).saga_job;
        let (service, desc_resource) = {
            let st = self.inner.borrow();
            let p = &st.pilots[id.0 as usize];
            (
                st.session.service(&p.description.resource),
                p.description.resource.clone(),
            )
        };
        let _ = desc_resource;
        if let (Some(service), Some(saga)) = (service, saga) {
            service.cancel(sim, saga);
        }
    }

    /// Cancel every non-terminal pilot (the middleware does this when all
    /// tasks are done, "so as not to waste resources", §III-E).
    pub fn cancel_all(&self, sim: &mut Simulation) {
        let live: Vec<PilotId> = {
            let mut st = self.inner.borrow_mut();
            // Wind-down: no replacements for anything failing from here on.
            st.draining = true;
            st.pilots
                .iter()
                .filter(|p| !p.state.is_terminal())
                .map(|p| p.id)
                .collect()
        };
        for id in live {
            self.cancel(sim, id);
        }
    }

    /// Snapshot of one pilot.
    pub fn pilot(&self, id: PilotId) -> Pilot {
        self.inner.borrow().pilots[id.0 as usize].clone()
    }

    /// Current state of one pilot.
    pub fn state(&self, id: PilotId) -> PilotState {
        self.inner.borrow().pilots[id.0 as usize].state
    }

    /// All pilots (snapshot).
    pub fn pilots(&self) -> Vec<Pilot> {
        self.inner.borrow().pilots.clone()
    }

    /// The SAGA session (shared).
    pub fn session(&self) -> Rc<Session> {
        self.inner.borrow().session.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimes_cluster::{Cluster, ClusterConfig};
    use aimes_sim::SimTime;

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn setup(cores: u32) -> (Simulation, PilotManager) {
        let sim = Simulation::new(17);
        let mut session = Session::new();
        session.add_resource(&sim, Cluster::new(ClusterConfig::test("stampede", cores)));
        let pm = PilotManager::new(Rc::new(session));
        pm.set_bootstrap_delay(d(10.0));
        (sim, pm)
    }

    #[test]
    fn pilot_reaches_active_then_done_at_walltime() {
        let (mut sim, pm) = setup(128);
        let ids = pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 64, d(600.0))],
        );
        sim.run_to_completion();
        let p = pm.pilot(ids[0]);
        assert_eq!(p.state, PilotState::Done);
        let states: Vec<PilotState> = p.timestamps.iter().map(|(s, _)| *s).collect();
        assert_eq!(
            states,
            vec![
                PilotState::New,
                PilotState::PendingLaunch,
                PilotState::Launching,
                PilotState::PendingActive,
                PilotState::Active,
                PilotState::Done
            ]
        );
        // Setup time covers SAGA latency + bootstrap; queue was empty.
        let setup = p.setup_time().unwrap();
        assert!(setup >= d(10.0) && setup < d(20.0), "setup {setup:?}");
        // Done at activation + walltime (the backend kills the job).
        let active = p.time_of(PilotState::Active).unwrap();
        let done = p.time_of(PilotState::Done).unwrap();
        // Active happened bootstrap after Running; the job ends 600 s
        // after it started *running*, i.e. 590 s after Active.
        assert!((done.since(active).as_secs() - 590.0).abs() < 1e-6);
    }

    #[test]
    fn queued_pilot_measures_queue_wait() {
        let (mut sim, pm) = setup(64);
        // Occupy the machine for 500 s so the pilot must wait.
        let cluster = pm.session().service("stampede").unwrap().cluster();
        cluster.submit(
            &mut sim,
            aimes_cluster::JobRequest::background(64, d(500.0), d(500.0)),
        );
        let ids = pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 64, d(100.0))],
        );
        sim.run_to_completion();
        let p = pm.pilot(ids[0]);
        assert_eq!(p.state, PilotState::Done);
        let qw = p.queue_wait().unwrap();
        assert!(
            qw >= d(450.0) && qw <= d(510.0),
            "queue wait {qw:?} should be ~500 s minus submission latency"
        );
    }

    #[test]
    fn subscribers_see_all_transitions() {
        let (mut sim, pm) = setup(64);
        let seen: Rc<RefCell<Vec<(PilotId, PilotState)>>> = Rc::new(RefCell::new(vec![]));
        let s2 = seen.clone();
        pm.subscribe(move |_sim, id, st| s2.borrow_mut().push((id, st)));
        let ids = pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 8, d(60.0))],
        );
        sim.run_to_completion();
        let states: Vec<PilotState> = seen
            .borrow()
            .iter()
            .filter(|(id, _)| *id == ids[0])
            .map(|(_, s)| *s)
            .collect();
        assert_eq!(
            states,
            vec![
                PilotState::PendingLaunch,
                PilotState::Launching,
                PilotState::PendingActive,
                PilotState::Active,
                PilotState::Done
            ]
        );
    }

    #[test]
    fn cancel_while_queued() {
        let (mut sim, pm) = setup(64);
        let cluster = pm.session().service("stampede").unwrap().cluster();
        cluster.submit(
            &mut sim,
            aimes_cluster::JobRequest::background(64, d(5000.0), d(5000.0)),
        );
        let ids = pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 64, d(100.0))],
        );
        let pm2 = pm.clone();
        let id = ids[0];
        sim.schedule_at(SimTime::from_secs(50.0), move |sim| {
            pm2.cancel(sim, id);
        });
        sim.run_to_completion();
        assert_eq!(pm.state(id), PilotState::Canceled);
        // Cancelled long before the blocking job ended.
        let p = pm.pilot(id);
        let cancelled = p.time_of(PilotState::Canceled).unwrap();
        assert!(cancelled.as_secs() < 100.0);
    }

    #[test]
    fn cancel_all_reaps_live_pilots() {
        let (mut sim, pm) = setup(512);
        pm.submit(
            &mut sim,
            vec![
                PilotDescription::new("stampede", 8, d(10_000.0)),
                PilotDescription::new("stampede", 8, d(10_000.0)),
            ],
        );
        let pm2 = pm.clone();
        sim.schedule_at(SimTime::from_secs(100.0), move |sim| {
            pm2.cancel_all(sim);
        });
        sim.run_to_completion();
        for p in pm.pilots() {
            assert_eq!(p.state, PilotState::Canceled);
        }
        assert!(sim.now().as_secs() < 1000.0);
    }

    #[test]
    fn pilot_dying_before_bootstrap_fails() {
        let (mut sim, pm) = setup(64);
        pm.set_bootstrap_delay(d(120.0));
        // Pilot walltime shorter than bootstrap: the backend job ends
        // while the agent is still starting.
        let ids = pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 8, d(60.0))],
        );
        sim.run_to_completion();
        assert_eq!(pm.state(ids[0]), PilotState::Failed);
    }

    #[test]
    fn failed_pilot_is_replaced_after_outage() {
        let (mut sim, pm) = setup(128);
        pm.set_recovery(PilotRecovery::default());
        let ids = pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 64, d(600.0))],
        );
        let cluster = pm.session().service("stampede").unwrap().cluster();
        sim.schedule_at(SimTime::from_secs(50.0), move |sim| {
            cluster.inject_outage(sim, d(100.0), true);
        });
        sim.run_to_completion();
        // The original died in the outage; one replacement was submitted
        // after the 60 s backoff, waited out the window, and went Active.
        assert_eq!(pm.state(ids[0]), PilotState::Failed);
        assert_eq!(pm.replacements(), 1);
        let pilots = pm.pilots();
        assert_eq!(pilots.len(), 2);
        assert_eq!(pilots[1].state, PilotState::Done);
        let ttr = pm.recovery_times();
        assert_eq!(ttr.len(), 1);
        // Failure at t=50, window until t=150, bootstrap + latency on top.
        assert!(
            ttr[0] >= d(100.0) && ttr[0] <= d(130.0),
            "time-to-recovery {:?}",
            ttr[0]
        );
    }

    #[test]
    fn launch_failures_blacklist_and_reroute() {
        let mut sim = Simulation::new(23);
        let mut session = Session::new();
        session.add_resource(&sim, Cluster::new(ClusterConfig::test("flaky", 64)));
        session.add_resource(&sim, Cluster::new(ClusterConfig::test("solid", 64)));
        session
            .service("flaky")
            .unwrap()
            .inject_launch_faults(0.0, 1.0);
        let pm = PilotManager::new(Rc::new(session));
        pm.set_bootstrap_delay(d(5.0));
        pm.set_recovery(PilotRecovery {
            max_replacements: 3,
            backoff: d(1.0),
            backoff_cap: d(4.0),
            blacklist_after: 3,
            reroute: true,
        });
        pm.submit(&mut sim, vec![PilotDescription::new("flaky", 8, d(60.0))]);
        sim.run_to_completion();
        // Three consecutive launch failures blacklist `flaky`; the next
        // replacement reroutes to `solid` and completes.
        assert_eq!(pm.blacklisted(), vec!["flaky".to_string()]);
        assert_eq!(pm.replacements(), 3);
        let pilots = pm.pilots();
        assert_eq!(pilots.len(), 4);
        let last = &pilots[3];
        assert_eq!(last.description.resource, "solid");
        assert_eq!(last.state, PilotState::Done);
    }

    #[test]
    fn replacement_cap_exhausts_without_reroute() {
        let mut sim = Simulation::new(29);
        let mut session = Session::new();
        session.add_resource(&sim, Cluster::new(ClusterConfig::test("flaky", 64)));
        session
            .service("flaky")
            .unwrap()
            .inject_launch_faults(0.0, 1.0);
        let pm = PilotManager::new(Rc::new(session));
        pm.set_recovery(PilotRecovery {
            max_replacements: 2,
            backoff: d(1.0),
            backoff_cap: d(4.0),
            blacklist_after: 10,
            reroute: false,
        });
        pm.submit(&mut sim, vec![PilotDescription::new("flaky", 8, d(60.0))]);
        sim.run_to_completion();
        // Original + 2 replacements, all Failed; then the cap stops it —
        // the run drains instead of looping forever.
        assert_eq!(pm.replacements(), 2);
        let pilots = pm.pilots();
        assert_eq!(pilots.len(), 3);
        assert!(pilots.iter().all(|p| p.state == PilotState::Failed));
        assert_eq!(pm.recovery_times().len(), 0);
    }

    #[test]
    #[should_panic(expected = "unknown resource")]
    fn unknown_resource_panics() {
        let (mut sim, pm) = setup(64);
        pm.submit(
            &mut sim,
            vec![PilotDescription::new("nonexistent", 8, d(60.0))],
        );
    }
}
