//! Pilot descriptions: what the Execution Manager asks the pilot system to
//! instantiate (Figure 1, step 4).

use aimes_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// A pilot to be placed on one resource.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct PilotDescription {
    /// Target resource name (must exist in the SAGA session).
    pub resource: String,
    /// Cores the pilot occupies.
    pub cores: u32,
    /// Walltime requested from the resource's scheduler; the pilot's time
    /// boundary for executing units.
    pub walltime: SimDuration,
    /// Named submission queue (`None` = the resource's default). Small
    /// short pilots can exploit high-priority debug queues.
    #[serde(default)]
    pub queue: Option<String>,
}

impl PilotDescription {
    /// Describe a pilot.
    pub fn new(resource: impl Into<String>, cores: u32, walltime: SimDuration) -> Self {
        let d = PilotDescription {
            resource: resource.into(),
            cores,
            walltime,
            queue: None,
        };
        assert!(d.cores > 0, "pilot needs at least one core");
        assert!(
            d.walltime.as_secs() > 0.0,
            "pilot needs a positive walltime"
        );
        d
    }

    /// Route the pilot to a named queue.
    pub fn with_queue(mut self, queue: impl Into<String>) -> Self {
        self.queue = Some(queue.into());
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_validates() {
        let d = PilotDescription::new("stampede", 128, SimDuration::from_hours(2.0));
        assert_eq!(d.resource, "stampede");
        assert_eq!(d.cores, 128);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn zero_cores_rejected() {
        PilotDescription::new("x", 0, SimDuration::from_hours(1.0));
    }

    #[test]
    #[should_panic(expected = "positive walltime")]
    fn zero_walltime_rejected() {
        PilotDescription::new("x", 1, SimDuration::ZERO);
    }

    #[test]
    fn serde_roundtrip() {
        let d = PilotDescription::new("gordon", 64, SimDuration::from_mins(90.0));
        let json = serde_json::to_string(&d).unwrap();
        let back: PilotDescription = serde_json::from_str(&json).unwrap();
        assert_eq!(d, back);
    }
}
