//! Failure detection from observable signals.
//!
//! PR 1's recovery was oracle-driven: the middleware learned of an outage
//! at the instant it was injected. Real middleware only ever sees
//! *signals* — heartbeats that stop arriving, status queries that time
//! out — and must infer death, paying a detection latency (Td) and
//! risking false positives. This module holds the per-pilot suspicion
//! state machine:
//!
//! ```text
//!              heartbeat                heartbeat (false positive)
//!            ┌───────────┐            ┌──────────────────────────┐
//!            ▼           │            ▼                          │
//!        ┌─────────┐   silence    ┌───────────┐   more silence ┌─┴───────────────┐
//!  ──▶   │ Healthy │ ──────────▶  │ Suspected │ ─────────────▶ │ Declared-Dead   │
//!        └─────────┘  > suspect   └───────────┘   > declare    └─────────────────┘
//! ```
//!
//! Two modes decide the silence thresholds: fixed timeouts, or a
//! simplified phi-accrual detector (Hayashibara et al.) where the
//! threshold adapts to the observed heartbeat inter-arrival times. The
//! detector itself is a pure state machine over simulation time; the
//! [`PilotManager`](crate::PilotManager) feeds it heartbeats and asks it
//! for deadlines, owning all event scheduling.

use crate::pilot::PilotId;
use aimes_sim::{SimDuration, SimTime};
use std::collections::{HashMap, VecDeque};

/// How silence thresholds are derived.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DetectionMode {
    /// Fixed timeouts ([`DetectionPolicy::suspect_after`] /
    /// [`DetectionPolicy::declare_after`] of silence).
    Timeout,
    /// Phi-accrual: suspicion level `phi = -log10 P(heartbeat still
    /// coming)` under an exponential inter-arrival model, so the
    /// threshold time is `phi · mean_interval · ln 10` of silence. The
    /// mean adapts to the observed arrivals over a sliding window.
    PhiAccrual {
        /// Phi at which a pilot becomes Suspected.
        suspect_phi: f64,
        /// Phi at which a pilot is Declared-Dead.
        declare_phi: f64,
        /// Sliding window of inter-arrival samples.
        window: usize,
    },
}

/// Tuning of the detection layer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DetectionPolicy {
    /// How often an active agent emits a heartbeat.
    pub heartbeat_interval: SimDuration,
    /// Timeout mode: silence before Healthy → Suspected.
    pub suspect_after: SimDuration,
    /// Timeout mode: silence before Suspected → Declared-Dead.
    pub declare_after: SimDuration,
    /// Threshold mode.
    pub mode: DetectionMode,
    /// On suspicion, confirm through a SAGA status query: a terminal
    /// answer declares immediately (short Td), an unreachable front end
    /// leaves the suspicion to the declare deadline.
    pub confirm_with_status_query: bool,
}

impl Default for DetectionPolicy {
    fn default() -> Self {
        DetectionPolicy {
            heartbeat_interval: SimDuration::from_secs(60.0),
            suspect_after: SimDuration::from_secs(150.0),
            declare_after: SimDuration::from_secs(300.0),
            mode: DetectionMode::Timeout,
            confirm_with_status_query: true,
        }
    }
}

/// Detector view of one pilot.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum HealthState {
    /// Heartbeats arriving on schedule.
    Healthy,
    /// Silence crossed the suspect threshold; not yet given up.
    Suspected,
    /// Silence crossed the declare threshold (or a status query confirmed
    /// a terminal job): the pilot is treated as dead from here on.
    DeclaredDead,
}

/// One recorded detector decision.
#[derive(Clone, Debug, PartialEq)]
pub struct DetectorVerdict {
    /// The pilot judged.
    pub pilot: PilotId,
    /// The resource it ran on.
    pub resource: String,
    /// The state entered.
    pub state: HealthState,
    /// When the verdict was reached.
    pub at: SimTime,
    /// Silence observed at verdict time.
    pub silent_for: SimDuration,
}

/// Observable detector event, delivered to
/// [`PilotManager::on_detector_event`](crate::PilotManager::on_detector_event)
/// subscribers (the middleware journals these).
#[derive(Clone, Debug, PartialEq)]
pub enum DetectorEvent {
    /// Silence crossed the suspect threshold.
    Suspected {
        /// The suspected pilot.
        pilot: PilotId,
        /// Its resource.
        resource: String,
        /// Silence at suspicion time.
        silent_for: SimDuration,
    },
    /// A suspected pilot's heartbeats resumed: false positive cleared.
    Recovered {
        /// The recovered pilot.
        pilot: PilotId,
        /// Its resource.
        resource: String,
        /// How long it was under suspicion.
        suspected_for: SimDuration,
    },
    /// The detector gave up on the pilot.
    DeclaredDead {
        /// The declared pilot.
        pilot: PilotId,
        /// Its resource.
        resource: String,
        /// Silence at declaration time.
        silent_for: SimDuration,
    },
    /// A heartbeat or status answer arrived for a decommissioned,
    /// blacklisted, or already-terminal target and was ignored.
    StaleSignal {
        /// The pilot the signal belonged to.
        pilot: PilotId,
        /// Its resource.
        resource: String,
        /// Why the signal was dropped.
        detail: String,
    },
}

struct PilotHealth {
    resource: String,
    state: HealthState,
    last_heartbeat: SimTime,
    suspected_at: Option<SimTime>,
    /// Observed inter-arrival samples (phi mode).
    intervals: VecDeque<f64>,
    /// Bumped on every heartbeat; scheduled checks carry the epoch they
    /// were armed under and no-op when a newer heartbeat superseded them.
    epoch: u64,
}

/// Outcome of feeding one heartbeat to the detector.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HeartbeatOutcome {
    /// `Some(suspected_for)` when the heartbeat cleared a suspicion.
    pub recovered: Option<SimDuration>,
}

/// Per-pilot suspicion state, shared across all pilots of one manager.
pub struct SuspicionDetector {
    policy: DetectionPolicy,
    health: HashMap<PilotId, PilotHealth>,
    verdicts: Vec<DetectorVerdict>,
    false_positives: u64,
}

impl SuspicionDetector {
    /// A detector with no registered pilots.
    pub fn new(policy: DetectionPolicy) -> Self {
        SuspicionDetector {
            policy,
            health: HashMap::new(),
            verdicts: Vec::new(),
            false_positives: 0,
        }
    }

    /// The policy in force.
    pub fn policy(&self) -> &DetectionPolicy {
        &self.policy
    }

    /// Start watching a pilot; `now` counts as its first sign of life.
    pub fn register(&mut self, pilot: PilotId, resource: String, now: SimTime) {
        self.health.insert(
            pilot,
            PilotHealth {
                resource,
                state: HealthState::Healthy,
                last_heartbeat: now,
                suspected_at: None,
                intervals: VecDeque::new(),
                epoch: 0,
            },
        );
    }

    /// Stop watching a pilot (terminal transition); pending checks armed
    /// under earlier epochs die on the unknown-pilot guard.
    pub fn deregister(&mut self, pilot: PilotId) {
        self.health.remove(&pilot);
    }

    /// Feed one delivered heartbeat. Returns `None` for unwatched pilots.
    pub fn heartbeat(&mut self, pilot: PilotId, now: SimTime) -> Option<HeartbeatOutcome> {
        let h = self.health.get_mut(&pilot)?;
        if let DetectionMode::PhiAccrual { window, .. } = self.policy.mode {
            h.intervals
                .push_back(now.saturating_since(h.last_heartbeat).as_secs());
            while h.intervals.len() > window.max(1) {
                h.intervals.pop_front();
            }
        }
        h.last_heartbeat = now;
        h.epoch += 1;
        let recovered = if h.state == HealthState::Suspected {
            let since = h.suspected_at.take().expect("suspected pilots have a mark");
            h.state = HealthState::Healthy;
            self.false_positives += 1;
            let resource = h.resource.clone();
            let suspected_for = now.saturating_since(since);
            self.verdicts.push(DetectorVerdict {
                pilot,
                resource,
                state: HealthState::Healthy,
                at: now,
                silent_for: SimDuration::ZERO,
            });
            Some(suspected_for)
        } else {
            None
        };
        Some(HeartbeatOutcome { recovered })
    }

    /// Mean heartbeat inter-arrival for a pilot: observed samples when
    /// available, else the configured interval.
    fn mean_interval(&self, h: &PilotHealth) -> f64 {
        if h.intervals.is_empty() {
            self.policy.heartbeat_interval.as_secs()
        } else {
            h.intervals.iter().sum::<f64>() / h.intervals.len() as f64
        }
    }

    /// The silence that moves this pilot to its *next* state.
    fn threshold(&self, h: &PilotHealth) -> Option<SimDuration> {
        let secs = match (self.policy.mode, h.state) {
            (DetectionMode::Timeout, HealthState::Healthy) => self.policy.suspect_after.as_secs(),
            (DetectionMode::Timeout, HealthState::Suspected) => self.policy.declare_after.as_secs(),
            (DetectionMode::PhiAccrual { suspect_phi, .. }, HealthState::Healthy) => {
                suspect_phi * self.mean_interval(h) * std::f64::consts::LN_10
            }
            (DetectionMode::PhiAccrual { declare_phi, .. }, HealthState::Suspected) => {
                declare_phi * self.mean_interval(h) * std::f64::consts::LN_10
            }
            (_, HealthState::DeclaredDead) => return None,
        };
        Some(SimDuration::from_secs(secs))
    }

    /// Absent further heartbeats, when does this pilot's next transition
    /// fall due? `None` for unwatched or already-declared pilots.
    pub fn next_deadline(&self, pilot: PilotId) -> Option<SimTime> {
        let h = self.health.get(&pilot)?;
        Some(h.last_heartbeat + self.threshold(h)?)
    }

    /// The check epoch of a pilot (0 for unwatched ones; pair with the
    /// unknown-pilot guard in [`advance`](Self::advance)).
    pub fn epoch(&self, pilot: PilotId) -> u64 {
        self.health.get(&pilot).map_or(0, |h| h.epoch)
    }

    /// Detector view of a pilot.
    pub fn health(&self, pilot: PilotId) -> Option<HealthState> {
        self.health.get(&pilot).map(|h| h.state)
    }

    /// A deadline fired: advance the pilot one suspicion step if its
    /// silence really crossed the threshold. Returns the state entered.
    pub fn advance(&mut self, pilot: PilotId, now: SimTime) -> Option<HealthState> {
        let deadline = self.next_deadline(pilot)?;
        if now < deadline {
            return None;
        }
        let h = self.health.get_mut(&pilot)?;
        let silent_for = now.saturating_since(h.last_heartbeat);
        let next = match h.state {
            HealthState::Healthy => {
                h.suspected_at = Some(now);
                HealthState::Suspected
            }
            HealthState::Suspected => HealthState::DeclaredDead,
            HealthState::DeclaredDead => return None,
        };
        h.state = next;
        let resource = h.resource.clone();
        self.verdicts.push(DetectorVerdict {
            pilot,
            resource,
            state: next,
            at: now,
            silent_for,
        });
        Some(next)
    }

    /// A status query confirmed the job is terminal: declare immediately
    /// without waiting out the silence. Returns the silence at
    /// declaration, or `None` if the pilot is unwatched/already declared.
    pub fn declare(&mut self, pilot: PilotId, now: SimTime) -> Option<SimDuration> {
        let h = self.health.get_mut(&pilot)?;
        if h.state == HealthState::DeclaredDead {
            return None;
        }
        h.state = HealthState::DeclaredDead;
        let silent_for = now.saturating_since(h.last_heartbeat);
        let resource = h.resource.clone();
        self.verdicts.push(DetectorVerdict {
            pilot,
            resource,
            state: HealthState::DeclaredDead,
            at: now,
            silent_for,
        });
        Some(silent_for)
    }

    /// Every verdict so far, in decision order.
    pub fn verdicts(&self) -> &[DetectorVerdict] {
        &self.verdicts
    }

    /// Suspicions later cleared by a resumed heartbeat.
    pub fn false_positives(&self) -> u64 {
        self.false_positives
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn timeout_detector() -> SuspicionDetector {
        SuspicionDetector::new(DetectionPolicy::default())
    }

    #[test]
    fn silence_walks_healthy_suspected_dead() {
        let mut det = timeout_detector();
        det.register(PilotId(0), "stampede".into(), t(0.0));
        assert_eq!(det.health(PilotId(0)), Some(HealthState::Healthy));
        assert_eq!(det.next_deadline(PilotId(0)), Some(t(150.0)));
        // Deadline not yet due: no transition.
        assert_eq!(det.advance(PilotId(0), t(100.0)), None);
        assert_eq!(
            det.advance(PilotId(0), t(150.0)),
            Some(HealthState::Suspected)
        );
        assert_eq!(det.next_deadline(PilotId(0)), Some(t(300.0)));
        assert_eq!(
            det.advance(PilotId(0), t(300.0)),
            Some(HealthState::DeclaredDead)
        );
        assert_eq!(det.next_deadline(PilotId(0)), None);
        let states: Vec<HealthState> = det.verdicts().iter().map(|v| v.state).collect();
        assert_eq!(
            states,
            vec![HealthState::Suspected, HealthState::DeclaredDead]
        );
        assert_eq!(det.verdicts()[1].silent_for, d(300.0));
        assert_eq!(det.false_positives(), 0);
    }

    #[test]
    fn resumed_heartbeat_clears_suspicion() {
        let mut det = timeout_detector();
        det.register(PilotId(3), "gordon".into(), t(0.0));
        let e0 = det.epoch(PilotId(3));
        assert_eq!(
            det.advance(PilotId(3), t(150.0)),
            Some(HealthState::Suspected)
        );
        let out = det.heartbeat(PilotId(3), t(200.0)).unwrap();
        assert_eq!(out.recovered, Some(d(50.0)));
        assert_eq!(det.health(PilotId(3)), Some(HealthState::Healthy));
        assert_eq!(det.false_positives(), 1);
        assert!(det.epoch(PilotId(3)) > e0, "heartbeats invalidate checks");
        // The clock restarts from the resumed heartbeat.
        assert_eq!(det.next_deadline(PilotId(3)), Some(t(350.0)));
    }

    #[test]
    fn confirmed_declaration_shortcuts_the_timeout() {
        let mut det = timeout_detector();
        det.register(PilotId(1), "hopper".into(), t(10.0));
        det.advance(PilotId(1), t(160.0));
        // Status query answered `Failed` at t=170: declare now, 160 s of
        // silence — far less than the 300 s timeout.
        assert_eq!(det.declare(PilotId(1), t(170.0)), Some(d(160.0)));
        assert_eq!(det.health(PilotId(1)), Some(HealthState::DeclaredDead));
        assert_eq!(det.declare(PilotId(1), t(180.0)), None, "idempotent");
    }

    #[test]
    fn phi_mode_adapts_to_observed_intervals() {
        let policy = DetectionPolicy {
            heartbeat_interval: d(60.0),
            mode: DetectionMode::PhiAccrual {
                suspect_phi: 1.0,
                declare_phi: 2.0,
                window: 4,
            },
            ..DetectionPolicy::default()
        };
        let mut det = SuspicionDetector::new(policy);
        det.register(PilotId(0), "osg".into(), t(0.0));
        // No samples yet: threshold from the configured 60 s interval.
        let base = det.next_deadline(PilotId(0)).unwrap().as_secs();
        assert!((base - 60.0 * std::f64::consts::LN_10).abs() < 1e-9);
        // Slow network: observed 120 s inter-arrivals double the mean,
        // so suspicion tolerates twice the silence (fewer false positives).
        for k in 1..=4 {
            det.heartbeat(PilotId(0), t(120.0 * f64::from(k)));
        }
        let deadline = det.next_deadline(PilotId(0)).unwrap().as_secs();
        assert!((deadline - (480.0 + 120.0 * std::f64::consts::LN_10)).abs() < 1e-9);
    }

    #[test]
    fn deregistered_pilots_are_invisible() {
        let mut det = timeout_detector();
        det.register(PilotId(7), "x".into(), t(0.0));
        det.deregister(PilotId(7));
        assert_eq!(det.heartbeat(PilotId(7), t(10.0)), None);
        assert_eq!(det.next_deadline(PilotId(7)), None);
        assert_eq!(det.advance(PilotId(7), t(1000.0)), None);
        assert_eq!(det.health(PilotId(7)), None);
    }
}
