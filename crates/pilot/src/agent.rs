//! Per-pilot agent state: core slots and the staging channel.
//!
//! The agent is the part of the pilot system that runs *inside* the
//! allocation once the pilot is active: it owns the pilot's core slots and
//! executes units on them. Wide-area staging is modelled as a serialized
//! channel — in the paper's deployment all task inputs leave the machine
//! where the AIMES middleware runs, so the origin's uplink is the shared
//! bottleneck and Ts grows with the number of tasks regardless of how many
//! pilots are active (exactly the Fig. 3 behaviour, where Ts "is
//! consistent across the four execution strategies").

use crate::pilot::PilotId;
use aimes_cluster::Cluster;
use aimes_sim::{SimDuration, SimTime};

/// A serialized transfer channel: transfers queue behind one another.
#[derive(Clone, Debug)]
pub struct StagingChannel {
    /// Effective bandwidth in MB/s.
    pub bandwidth_mbps: f64,
    /// Fixed per-transfer latency (connection/protocol overhead).
    pub latency: SimDuration,
    busy_until: SimTime,
}

impl StagingChannel {
    /// A channel with the given bandwidth and per-transfer latency.
    pub fn new(bandwidth_mbps: f64, latency: SimDuration) -> Self {
        assert!(bandwidth_mbps > 0.0);
        StagingChannel {
            bandwidth_mbps,
            latency,
            busy_until: SimTime::ZERO,
        }
    }

    /// Enqueue a transfer of `megabytes` at `now`; returns `(start, end)`.
    /// The transfer starts when the channel frees up.
    pub fn enqueue(&mut self, now: SimTime, megabytes: f64) -> (SimTime, SimTime) {
        let start = now.max(self.busy_until);
        let duration = self.latency + SimDuration::from_secs(megabytes / self.bandwidth_mbps);
        let end = start + duration;
        self.busy_until = end;
        (start, end)
    }

    /// When the channel next becomes free.
    pub fn busy_until(&self) -> SimTime {
        self.busy_until
    }
}

/// Execution-side state of one active pilot.
#[derive(Clone, Debug)]
pub struct Agent {
    pub pilot: PilotId,
    pub resource: String,
    /// Cluster handle, for resource-side transfer parameters.
    pub cluster: Cluster,
    pub total_cores: u32,
    pub free_cores: u32,
    /// The instant the resource reclaims the allocation.
    pub walltime_deadline: SimTime,
}

impl Agent {
    /// Create the agent for a pilot that became active at `activated`.
    pub fn new(
        pilot: PilotId,
        cluster: Cluster,
        cores: u32,
        activated: SimTime,
        walltime: SimDuration,
    ) -> Self {
        Agent {
            pilot,
            resource: cluster.name(),
            cluster,
            total_cores: cores,
            free_cores: cores,
            walltime_deadline: activated + walltime,
        }
    }

    /// Remaining walltime at `now` (zero once past the deadline).
    pub fn remaining_walltime(&self, now: SimTime) -> SimDuration {
        self.walltime_deadline.saturating_since(now)
    }

    /// Claim `cores` slots. Panics on oversubscription — the scheduler is
    /// responsible for never assigning beyond capacity.
    pub fn reserve(&mut self, cores: u32) {
        assert!(
            self.free_cores >= cores,
            "agent {} oversubscribed: {} free, {} requested",
            self.pilot,
            self.free_cores,
            cores
        );
        self.free_cores -= cores;
    }

    /// Return `cores` slots.
    pub fn release(&mut self, cores: u32) {
        self.free_cores += cores;
        assert!(
            self.free_cores <= self.total_cores,
            "agent {} released more cores than it owns",
            self.pilot
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimes_cluster::ClusterConfig;

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }
    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    #[test]
    fn channel_serializes_transfers() {
        let mut ch = StagingChannel::new(10.0, d(1.0));
        // 10 MB at 10 MB/s + 1 s latency = 2 s each.
        let (s1, e1) = ch.enqueue(t(0.0), 10.0);
        let (s2, e2) = ch.enqueue(t(0.0), 10.0);
        assert_eq!((s1, e1), (t(0.0), t(2.0)));
        assert_eq!((s2, e2), (t(2.0), t(4.0)));
        // A transfer arriving after the channel drained starts immediately.
        let (s3, _) = ch.enqueue(t(100.0), 1.0);
        assert_eq!(s3, t(100.0));
    }

    #[test]
    fn channel_busy_until_tracks() {
        let mut ch = StagingChannel::new(5.0, d(0.0));
        assert_eq!(ch.busy_until(), t(0.0));
        ch.enqueue(t(10.0), 50.0);
        assert_eq!(ch.busy_until(), t(20.0));
    }

    #[test]
    fn agent_core_accounting() {
        let c = Cluster::new(ClusterConfig::test("r", 64));
        let mut a = Agent::new(PilotId(0), c, 8, t(100.0), d(3600.0));
        assert_eq!(a.free_cores, 8);
        a.reserve(5);
        a.reserve(3);
        assert_eq!(a.free_cores, 0);
        a.release(8);
        assert_eq!(a.free_cores, 8);
    }

    #[test]
    #[should_panic(expected = "oversubscribed")]
    fn agent_rejects_oversubscription() {
        let c = Cluster::new(ClusterConfig::test("r", 64));
        let mut a = Agent::new(PilotId(0), c, 4, t(0.0), d(100.0));
        a.reserve(5);
    }

    #[test]
    #[should_panic(expected = "more cores than it owns")]
    fn agent_rejects_over_release() {
        let c = Cluster::new(ClusterConfig::test("r", 64));
        let mut a = Agent::new(PilotId(0), c, 4, t(0.0), d(100.0));
        a.release(1);
    }

    #[test]
    fn remaining_walltime_clamps() {
        let c = Cluster::new(ClusterConfig::test("r", 64));
        let a = Agent::new(PilotId(0), c, 4, t(100.0), d(50.0));
        assert_eq!(a.remaining_walltime(t(100.0)), d(50.0));
        assert_eq!(a.remaining_walltime(t(140.0)), d(10.0));
        assert_eq!(a.remaining_walltime(t(1000.0)), SimDuration::ZERO);
    }
}
