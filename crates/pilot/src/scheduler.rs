//! Unit-to-pilot scheduling policies.
//!
//! Table I's execution strategies differ in exactly two pilot-layer
//! decisions: the *binding* (early: tasks bound to pilots before they
//! become active; late: tasks bound as pilots become active) and the
//! *scheduler* used to place tasks on pilots (direct submission for early
//! binding; backfill for late binding). Round-robin is included as the
//! naive late-binding baseline for the scheduler ablation.

use crate::pilot::PilotId;
use crate::unit::UnitId;
use aimes_sim::SimDuration;
use serde::{Deserialize, Serialize};

/// When units are bound to pilots.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum Binding {
    /// Bound at submission, before pilots become active (Table I exp. 1–2).
    Early,
    /// Bound when pilots are active and have capacity (Table I exp. 3–4).
    Late,
}

/// How eligible units are placed onto active pilots.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum UnitScheduler {
    /// Early binding: each unit goes to the pilot it was bound to.
    Direct,
    /// Late binding, naive: cycle over active pilots with free cores,
    /// ignoring remaining walltime.
    RoundRobin,
    /// Late binding, AIMES default: place a unit only where it fits the
    /// pilot's *remaining walltime* as well as its free cores.
    Backfill,
}

/// Scheduler view of one pilot.
#[derive(Clone, Copy, Debug)]
pub struct PilotView {
    pub id: PilotId,
    pub free_cores: u32,
    pub remaining_walltime: SimDuration,
}

/// Scheduler view of one eligible unit.
#[derive(Clone, Copy, Debug)]
pub struct UnitView {
    pub id: UnitId,
    pub cores: u32,
    /// Expected execution duration (known for skeleton tasks).
    pub est_duration: SimDuration,
    /// Early binding: the pilot this unit must run on.
    pub bound_to: Option<PilotId>,
}

/// Compute assignments for this scheduling pass. `units` is in queue
/// order; `pilots` lists *active* pilots only. Returns `(unit, pilot)`
/// pairs; unassigned units simply stay queued for the next pass.
pub fn assign(
    scheduler: UnitScheduler,
    units: &[UnitView],
    pilots: &[PilotView],
    rr_cursor: &mut usize,
) -> Vec<(UnitId, PilotId)> {
    let mut free: Vec<PilotView> = pilots.to_vec();
    // Deterministic pilot order.
    free.sort_by_key(|p| p.id);
    let mut out = Vec::new();
    match scheduler {
        UnitScheduler::Direct => {
            for u in units {
                let Some(target) = u.bound_to else { continue };
                if let Some(p) = free.iter_mut().find(|p| p.id == target) {
                    if p.free_cores >= u.cores {
                        p.free_cores -= u.cores;
                        out.push((u.id, p.id));
                    }
                }
            }
        }
        UnitScheduler::RoundRobin => {
            if free.is_empty() {
                return out;
            }
            for u in units {
                let n = free.len();
                // Find the next pilot (cyclically) with room.
                let mut placed = false;
                for k in 0..n {
                    let idx = (*rr_cursor + k) % n;
                    if free[idx].free_cores >= u.cores {
                        free[idx].free_cores -= u.cores;
                        out.push((u.id, free[idx].id));
                        *rr_cursor = (idx + 1) % n;
                        placed = true;
                        break;
                    }
                }
                if !placed {
                    // No pilot has room; later (equal-core) units won't
                    // fit either for the paper's uniform single-core bags,
                    // but heterogeneous units might — keep scanning.
                    continue;
                }
            }
        }
        UnitScheduler::Backfill => {
            for u in units {
                // Among pilots that fit both cores and remaining walltime,
                // pick the one with the most remaining walltime (leaves
                // tight pilots for short units); ties by id.
                let best = free
                    .iter_mut()
                    .filter(|p| p.free_cores >= u.cores && p.remaining_walltime >= u.est_duration)
                    .max_by(|a, b| {
                        a.remaining_walltime
                            .cmp(&b.remaining_walltime)
                            .then_with(|| b.id.cmp(&a.id))
                    });
                if let Some(p) = best {
                    p.free_cores -= u.cores;
                    out.push((u.id, p.id));
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }
    fn pv(id: u32, free: u32, rem: f64) -> PilotView {
        PilotView {
            id: PilotId(id),
            free_cores: free,
            remaining_walltime: d(rem),
        }
    }
    fn uv(id: u32, cores: u32, dur: f64, bound: Option<u32>) -> UnitView {
        UnitView {
            id: UnitId(id),
            cores,
            est_duration: d(dur),
            bound_to: bound.map(PilotId),
        }
    }

    #[test]
    fn direct_respects_binding() {
        let pilots = [pv(0, 2, 1000.0), pv(1, 2, 1000.0)];
        let units = [
            uv(0, 1, 100.0, Some(1)),
            uv(1, 1, 100.0, Some(1)),
            uv(2, 1, 100.0, Some(0)),
            uv(3, 1, 100.0, Some(1)), // pilot 1 full by now
            uv(4, 1, 100.0, None),    // unbound: direct ignores it
        ];
        let mut cur = 0;
        let a = assign(UnitScheduler::Direct, &units, &pilots, &mut cur);
        assert_eq!(
            a,
            vec![
                (UnitId(0), PilotId(1)),
                (UnitId(1), PilotId(1)),
                (UnitId(2), PilotId(0)),
            ]
        );
    }

    #[test]
    fn direct_waits_for_bound_pilot() {
        // Bound pilot not in the active list: nothing scheduled.
        let pilots = [pv(0, 8, 1000.0)];
        let units = [uv(0, 1, 100.0, Some(3))];
        let mut cur = 0;
        assert!(assign(UnitScheduler::Direct, &units, &pilots, &mut cur).is_empty());
    }

    #[test]
    fn round_robin_cycles() {
        let pilots = [pv(0, 2, 1000.0), pv(1, 2, 1000.0), pv(2, 2, 1000.0)];
        let units: Vec<_> = (0..6).map(|i| uv(i, 1, 100.0, None)).collect();
        let mut cur = 0;
        let a = assign(UnitScheduler::RoundRobin, &units, &pilots, &mut cur);
        let targets: Vec<u32> = a.iter().map(|(_, p)| p.0).collect();
        assert_eq!(targets, vec![0, 1, 2, 0, 1, 2]);
    }

    #[test]
    fn round_robin_ignores_walltime() {
        // Remaining walltime is too short, but round robin schedules
        // anyway — that is its defect by design.
        let pilots = [pv(0, 4, 10.0)];
        let units = [uv(0, 1, 1000.0, None)];
        let mut cur = 0;
        let a = assign(UnitScheduler::RoundRobin, &units, &pilots, &mut cur);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn backfill_respects_remaining_walltime() {
        let pilots = [pv(0, 4, 10.0), pv(1, 4, 2000.0)];
        let units = [uv(0, 1, 1000.0, None), uv(1, 1, 5.0, None)];
        let mut cur = 0;
        let a = assign(UnitScheduler::Backfill, &units, &pilots, &mut cur);
        // Long unit only fits pilot 1; short unit prefers the pilot with
        // the most remaining walltime (1) if it still has room.
        assert!(a.contains(&(UnitId(0), PilotId(1))));
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn backfill_skips_unfittable_units() {
        let pilots = [pv(0, 4, 50.0)];
        let units = [uv(0, 1, 100.0, None), uv(1, 8, 10.0, None)];
        let mut cur = 0;
        let a = assign(UnitScheduler::Backfill, &units, &pilots, &mut cur);
        assert!(a.is_empty());
    }

    #[test]
    fn empty_inputs() {
        let mut cur = 0;
        for s in [
            UnitScheduler::Direct,
            UnitScheduler::RoundRobin,
            UnitScheduler::Backfill,
        ] {
            assert!(assign(s, &[], &[pv(0, 4, 100.0)], &mut cur).is_empty());
            assert!(assign(s, &[uv(0, 1, 1.0, None)], &[], &mut cur).is_empty());
        }
    }

    proptest! {
        /// No pilot is ever oversubscribed within one pass, and each unit
        /// is assigned at most once.
        #[test]
        fn prop_capacity_respected(
            pilot_cores in proptest::collection::vec(1u32..16, 1..5),
            unit_cores in proptest::collection::vec(1u32..8, 1..40),
            sched_pick in 0u8..3,
        ) {
            let scheduler = match sched_pick {
                0 => UnitScheduler::Direct,
                1 => UnitScheduler::RoundRobin,
                _ => UnitScheduler::Backfill,
            };
            let pilots: Vec<PilotView> = pilot_cores
                .iter()
                .enumerate()
                .map(|(i, c)| pv(i as u32, *c, 1e6))
                .collect();
            let units: Vec<UnitView> = unit_cores
                .iter()
                .enumerate()
                .map(|(i, c)| uv(i as u32, *c, 60.0,
                    Some((i % pilots.len()) as u32)))
                .collect();
            let mut cur = 0;
            let a = assign(scheduler, &units, &pilots, &mut cur);
            // Unique units.
            let mut seen = std::collections::HashSet::new();
            for (u, _) in &a {
                prop_assert!(seen.insert(*u));
            }
            // Capacity per pilot.
            for p in &pilots {
                let used: u32 = a.iter()
                    .filter(|(_, pid)| *pid == p.id)
                    .map(|(u, _)| units[u.0 as usize].cores)
                    .sum();
                prop_assert!(used <= p.free_cores);
            }
        }

        /// Backfill never places a unit whose duration exceeds the
        /// pilot's remaining walltime.
        #[test]
        fn prop_backfill_walltime_safe(
            rems in proptest::collection::vec(1.0f64..1e4, 1..5),
            durs in proptest::collection::vec(1.0f64..1e4, 1..30),
        ) {
            let pilots: Vec<PilotView> = rems
                .iter()
                .enumerate()
                .map(|(i, r)| pv(i as u32, 4, *r))
                .collect();
            let units: Vec<UnitView> = durs
                .iter()
                .enumerate()
                .map(|(i, t)| uv(i as u32, 1, *t, None))
                .collect();
            let mut cur = 0;
            let a = assign(UnitScheduler::Backfill, &units, &pilots, &mut cur);
            for (u, p) in a {
                let unit = &units[u.0 as usize];
                let pilot = pilots.iter().find(|x| x.id == p).unwrap();
                prop_assert!(pilot.remaining_walltime >= unit.est_duration);
            }
        }
    }
}
