//! The unit manager: binds compute units to pilots and drives their
//! execution (Figure 1, step 6).
//!
//! "Once the pilots become active, tasks' input files are staged on the
//! resources of the active pilots and then tasks are scheduled and executed
//! on those pilots. Tasks are automatically restarted in case of failure
//! and, once executed, task output(s) are staged back to the source where
//! the AIMES middleware is being used." (§III-E)

use crate::agent::{Agent, StagingChannel};
use crate::pilot::{PilotId, PilotState};
use crate::pilot_manager::PilotManager;
use crate::scheduler::{assign, Binding, PilotView, UnitScheduler, UnitView};
use crate::unit::{ComputeUnit, UnitId, UnitState};
use aimes_sim::{EventId, ManagerPhase, SimDuration, SimTime, Simulation, TraceKind, UnitPhase};
use aimes_skeleton::TaskSpec;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

/// Dwell-time histogram name for time spent *in* `state`.
fn unit_dwell_metric(state: UnitState) -> String {
    match state {
        UnitState::New => "unit.dwell.new",
        UnitState::PendingExecution => "unit.dwell.pending_execution",
        UnitState::StagingInput => "unit.dwell.staging_input",
        UnitState::Executing => "unit.dwell.executing",
        UnitState::StagingOutput => "unit.dwell.staging_output",
        UnitState::Done => "unit.dwell.done",
        UnitState::Failed => "unit.dwell.failed",
        UnitState::Canceled => "unit.dwell.canceled",
    }
    .to_string()
}

/// Transition `unit`, first observing how long it dwelled in its current
/// state (no-op histogram update when metrics are disabled).
fn transition_unit(sim: &Simulation, unit: &mut ComputeUnit, next: UnitState, now: SimTime) {
    if let Some(&(prev, entered)) = unit.timestamps.last() {
        let dwell = now.saturating_since(entered);
        sim.metrics()
            .observe(dwell.as_secs(), || unit_dwell_metric(prev));
    }
    unit.transition(next, now);
}

/// Unit-manager configuration.
#[derive(Clone, Debug)]
pub struct UmConfig {
    pub scheduler: UnitScheduler,
    pub binding: Binding,
    /// Maximum execution attempts per unit before it is marked Failed.
    pub max_attempts: u32,
    /// Origin uplink bandwidth (MB/s) — the shared staging bottleneck.
    pub origin_bandwidth_mbps: f64,
    /// Per-transfer latency on the origin channel.
    pub origin_latency: SimDuration,
    /// Serialized middleware overhead per unit dispatch (the Trp
    /// contribution that steepens Tx beyond ~256 tasks in Fig. 3).
    pub dispatch_overhead: SimDuration,
    /// Fault injection: chance that an execution attempt dies partway
    /// (node crash, segfault). Zero (the default) draws nothing — the
    /// event stream is identical to a manager without fault support.
    pub unit_fault_chance: f64,
    /// Given a fault, chance it is permanent (bad input, poisoned task):
    /// the unit fails outright instead of being retried.
    pub unit_fault_permanent_chance: f64,
    /// Base delay before a failed unit re-enters the ready queue,
    /// growing exponentially with the attempt count. Zero (the default)
    /// restores the legacy immediate-restart behavior.
    pub retry_backoff: SimDuration,
    /// Ceiling for the exponential retry backoff.
    pub retry_backoff_cap: SimDuration,
    /// Checkpoint interval for unit execution. Zero (the default) means
    /// no checkpointing: an aborted attempt restarts from scratch. Non-
    /// zero, an aborted Executing attempt keeps its progress truncated
    /// to the last interval boundary and the next attempt resumes there.
    pub checkpoint_interval: SimDuration,
}

impl UmConfig {
    /// The paper-experiment configuration for a given binding/scheduler.
    pub fn new(binding: Binding, scheduler: UnitScheduler) -> Self {
        UmConfig {
            scheduler,
            binding,
            max_attempts: 3,
            origin_bandwidth_mbps: 5.0,
            origin_latency: SimDuration::from_secs(0.1),
            dispatch_overhead: SimDuration::from_secs(0.05),
            unit_fault_chance: 0.0,
            unit_fault_permanent_chance: 0.0,
            retry_backoff: SimDuration::ZERO,
            retry_backoff_cap: SimDuration::ZERO,
            checkpoint_interval: SimDuration::ZERO,
        }
    }

    /// Reject configurations that would silently misbehave at run time.
    pub fn validate(&self) -> Result<(), String> {
        if self.max_attempts == 0 {
            return Err("max_attempts is 0: every unit would fail before its first try".into());
        }
        if !self.retry_backoff.is_zero() && self.retry_backoff_cap < self.retry_backoff {
            return Err(format!(
                "inverted cap: retry_backoff_cap {:.0}s < retry_backoff {:.0}s",
                self.retry_backoff_cap.as_secs(),
                self.retry_backoff.as_secs()
            ));
        }
        Ok(())
    }

    /// Delay before re-queueing attempt number `attempts` (1-based count
    /// of attempts already made): `retry_backoff * 2^(attempts-1)`,
    /// capped. Zero base means no delay. The cap is honored as given —
    /// an inverted cap is a [`Self::validate`] error, not a silent widen.
    pub fn retry_delay(&self, attempts: u32) -> SimDuration {
        if self.retry_backoff.is_zero() {
            return SimDuration::ZERO;
        }
        let exp = attempts.saturating_sub(1).min(30);
        let delay = self.retry_backoff * 2.0_f64.powi(exp as i32);
        delay.min(self.retry_backoff_cap)
    }
}

/// Checkpoint-salvage notifications, fired by the unit manager when
/// checkpointing is enabled (the middleware journals these).
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SalvageEvent {
    /// An aborted attempt's progress was banked at an interval boundary.
    /// `progress_secs` is the cumulative checkpointed execution time.
    Checkpoint { progress_secs: f64 },
    /// A new attempt is starting from the last checkpoint instead of
    /// from zero; `salvaged_secs` of execution need not be redone.
    Resume { salvaged_secs: f64 },
}

/// Progress counters.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub struct UnitManagerStats {
    pub total: usize,
    pub done: usize,
    pub failed: usize,
    pub restarts: u64,
}

impl UnitManagerStats {
    /// True once every unit reached a terminal state.
    pub fn finished(&self) -> bool {
        self.total > 0 && self.done + self.failed == self.total
    }
}

/// Callback fired once when every unit reaches a terminal state.
type CompletionCallback = Box<dyn FnOnce(&mut Simulation)>;

/// Observer fired after every unit state transition — the hook the
/// middleware's run journal uses to record unit history.
type UnitTransitionCallback = Box<dyn FnMut(&mut Simulation, UnitId, UnitState)>;

/// Observer fired on checkpoint/resume salvage events.
type SalvageCallback = Box<dyn FnMut(&mut Simulation, UnitId, SalvageEvent)>;

struct UmState {
    config: UmConfig,
    units: Vec<ComputeUnit>,
    /// Unresolved dependency count per unit.
    dep_count: Vec<usize>,
    /// Reverse dependency edges.
    dependents: Vec<Vec<UnitId>>,
    /// Eligible-but-unscheduled units, FIFO.
    ready: VecDeque<UnitId>,
    /// Early-binding assignment per unit.
    bound: Vec<Option<PilotId>>,
    agents: HashMap<PilotId, Agent>,
    /// Cancellable pending event for units in StagingInput/Executing.
    inflight: HashMap<UnitId, EventId>,
    origin_channel: StagingChannel,
    overhead_busy_until: SimTime,
    /// Lazily forked stream for unit-fault draws; stays unforked (and the
    /// simulation's RNG tree untouched) while fault injection is off.
    fault_rng: Option<aimes_sim::SimRng>,
    rr_cursor: usize,
    stats: UnitManagerStats,
    transition_subscribers: Vec<UnitTransitionCallback>,
    salvage_subscribers: Vec<SalvageCallback>,
    on_all_done: Vec<CompletionCallback>,
    schedule_pending: bool,
    completion_fired: bool,
}

/// Handle to the unit manager.
#[derive(Clone)]
pub struct UnitManager {
    inner: Rc<RefCell<UmState>>,
    pm: PilotManager,
}

impl UnitManager {
    /// Create a unit manager over a pilot manager; subscribes to pilot
    /// state changes immediately.
    pub fn new(pm: PilotManager, config: UmConfig) -> Self {
        let um = UnitManager {
            inner: Rc::new(RefCell::new(UmState {
                origin_channel: StagingChannel::new(
                    config.origin_bandwidth_mbps,
                    config.origin_latency,
                ),
                config,
                units: Vec::new(),
                dep_count: Vec::new(),
                dependents: Vec::new(),
                ready: VecDeque::new(),
                bound: Vec::new(),
                agents: HashMap::new(),
                inflight: HashMap::new(),
                overhead_busy_until: SimTime::ZERO,
                fault_rng: None,
                rr_cursor: 0,
                stats: UnitManagerStats::default(),
                transition_subscribers: Vec::new(),
                salvage_subscribers: Vec::new(),
                on_all_done: Vec::new(),
                schedule_pending: false,
                completion_fired: false,
            })),
            pm: pm.clone(),
        };
        let weak = Rc::downgrade(&um.inner);
        let pm2 = pm.clone();
        pm.subscribe(move |sim, pilot, state| {
            if let Some(inner) = weak.upgrade() {
                let um = UnitManager {
                    inner,
                    pm: pm2.clone(),
                };
                um.on_pilot_state(sim, pilot, state);
            }
        });
        // Environment-side channel: a pilot whose agent went silent can no
        // longer deliver completions, even though the client still sees it
        // as Active until the detector declares it dead.
        let weak = Rc::downgrade(&um.inner);
        let pm3 = pm.clone();
        pm.on_pilot_silent(move |sim, pilot| {
            if let Some(inner) = weak.upgrade() {
                let um = UnitManager {
                    inner,
                    pm: pm3.clone(),
                };
                um.on_pilot_silent(sim, pilot);
            }
        });
        um
    }

    /// Register an observer fired after every unit state transition (the
    /// middleware journal records unit history through this hook).
    pub fn subscribe(&self, cb: impl FnMut(&mut Simulation, UnitId, UnitState) + 'static) {
        self.inner
            .borrow_mut()
            .transition_subscribers
            .push(Box::new(cb));
    }

    /// Fire transition observers with the state released (callbacks may
    /// re-enter the manager). Subscribers added during the callbacks are
    /// kept.
    fn fire_transition(&self, sim: &mut Simulation, uid: UnitId, state: UnitState) {
        let mut subs = std::mem::take(&mut self.inner.borrow_mut().transition_subscribers);
        if subs.is_empty() {
            return;
        }
        for cb in &mut subs {
            cb(sim, uid, state);
        }
        let mut st = self.inner.borrow_mut();
        let added = std::mem::take(&mut st.transition_subscribers);
        st.transition_subscribers = subs;
        st.transition_subscribers.extend(added);
    }

    /// Register an observer fired on checkpoint/resume salvage events
    /// (only ever fired when `checkpoint_interval` is non-zero).
    pub fn on_salvage(&self, cb: impl FnMut(&mut Simulation, UnitId, SalvageEvent) + 'static) {
        self.inner
            .borrow_mut()
            .salvage_subscribers
            .push(Box::new(cb));
    }

    /// Fire salvage observers with the state released (callbacks may
    /// re-enter the manager).
    fn fire_salvage(&self, sim: &mut Simulation, uid: UnitId, event: SalvageEvent) {
        let mut subs = std::mem::take(&mut self.inner.borrow_mut().salvage_subscribers);
        if subs.is_empty() {
            return;
        }
        for cb in &mut subs {
            cb(sim, uid, event);
        }
        let mut st = self.inner.borrow_mut();
        let added = std::mem::take(&mut st.salvage_subscribers);
        st.salvage_subscribers = subs;
        st.salvage_subscribers.extend(added);
    }

    /// Register a callback fired once when every unit has reached a
    /// terminal state.
    pub fn on_all_done(&self, cb: impl FnOnce(&mut Simulation) + 'static) {
        self.inner.borrow_mut().on_all_done.push(Box::new(cb));
    }

    /// Submit the application's tasks as compute units. For early binding,
    /// units are partitioned in contiguous blocks across the pilots known
    /// to the pilot manager at this point.
    pub fn submit_units(&self, sim: &mut Simulation, tasks: &[TaskSpec]) {
        let now = sim.now();
        {
            let mut st = self.inner.borrow_mut();
            let st = &mut *st;
            assert!(st.units.is_empty(), "submit_units may be called once");
            let n = tasks.len();
            st.units.reserve(n);
            st.dep_count = vec![0; n];
            st.dependents = vec![Vec::new(); n];
            st.bound = vec![None; n];
            st.stats.total = n;
            for (i, task) in tasks.iter().enumerate() {
                assert_eq!(task.id.0 as usize, i, "task ids must be dense and in order");
                let uid = UnitId(i as u32);
                st.units.push(ComputeUnit::new(uid, task.clone(), now));
                st.dep_count[i] = task.dependencies.len();
                for dep in &task.dependencies {
                    st.dependents[dep.0 as usize].push(uid);
                }
            }
            if st.config.binding == Binding::Early {
                let pilots = self.pm.pilots();
                assert!(
                    !pilots.is_empty(),
                    "early binding requires pilots to be described first"
                );
                // Contiguous blocks proportional to pilot cores.
                let total_cores: u64 = pilots.iter().map(|p| u64::from(p.description.cores)).sum();
                let mut cursor = 0usize;
                for (k, p) in pilots.iter().enumerate() {
                    let share = if k + 1 == pilots.len() {
                        n - cursor
                    } else {
                        ((u64::from(p.description.cores) * n as u64) / total_cores) as usize
                    };
                    for slot in &mut st.bound[cursor..(cursor + share).min(n)] {
                        *slot = Some(p.id);
                    }
                    cursor = (cursor + share).min(n);
                }
            }
        }
        // Move dependency-free units to PendingExecution.
        let ready_now: Vec<UnitId> = {
            let st = self.inner.borrow();
            (0..st.units.len() as u32)
                .map(UnitId)
                .filter(|u| st.dep_count[u.0 as usize] == 0)
                .collect()
        };
        for uid in ready_now {
            self.make_ready(sim, uid);
        }
        self.request_schedule(sim);
    }

    fn make_ready(&self, sim: &mut Simulation, uid: UnitId) {
        {
            let mut st = self.inner.borrow_mut();
            transition_unit(
                sim,
                &mut st.units[uid.0 as usize],
                UnitState::PendingExecution,
                sim.now(),
            );
            st.ready.push_back(uid);
        }
        sim.tracer().record_with(sim.now(), || {
            (
                uid.to_string(),
                TraceKind::Unit(UnitPhase::PendingExecution),
                String::new(),
            )
        });
        self.fire_transition(sim, uid, UnitState::PendingExecution);
    }

    fn on_pilot_state(&self, sim: &mut Simulation, pilot: PilotId, state: PilotState) {
        match state {
            PilotState::Active => {
                let p = self.pm.pilot(pilot);
                let cluster = self
                    .pm
                    .session()
                    .service(&p.description.resource)
                    .expect("resource exists")
                    .cluster();
                let agent = Agent::new(
                    pilot,
                    cluster,
                    p.description.cores,
                    sim.now(),
                    p.description.walltime,
                );
                self.inner.borrow_mut().agents.insert(pilot, agent);
                self.request_schedule(sim);
            }
            s if s.is_terminal() => self.on_pilot_death(sim, pilot),
            _ => {}
        }
    }

    fn on_pilot_death(&self, sim: &mut Simulation, pilot: PilotId) {
        let victims: Vec<UnitId> = {
            let mut st = self.inner.borrow_mut();
            st.agents.remove(&pilot);
            st.units
                .iter()
                .filter(|u| {
                    u.pilot == Some(pilot)
                        && matches!(u.state, UnitState::StagingInput | UnitState::Executing)
                })
                .map(|u| u.id)
                .collect()
        };
        for uid in victims {
            let ev = self.inner.borrow_mut().inflight.remove(&uid);
            if let Some(ev) = ev {
                sim.cancel(ev);
            }
            self.restart_or_fail(sim, uid);
        }
        self.request_schedule(sim);
    }

    /// Physical effect of a pilot going silent: the agent process is gone,
    /// so in-flight staging/execution completions can never arrive and no
    /// new units can be dispatched to it. Client-visible unit states stay
    /// untouched — the middleware still believes those units are running
    /// until the detector declares the pilot dead, at which point the
    /// normal death path ([`Self::on_pilot_death`]) restarts them.
    fn on_pilot_silent(&self, sim: &mut Simulation, pilot: PilotId) {
        let (events, stranded) = {
            let mut st = self.inner.borrow_mut();
            let st = &mut *st;
            st.agents.remove(&pilot);
            let stranded: Vec<UnitId> = st
                .units
                .iter()
                .filter(|u| {
                    u.pilot == Some(pilot)
                        && matches!(u.state, UnitState::StagingInput | UnitState::Executing)
                })
                .map(|u| u.id)
                .collect();
            let events: Vec<EventId> = stranded
                .iter()
                .filter_map(|uid| st.inflight.remove(uid))
                .collect();
            (events, stranded.len())
        };
        for ev in events {
            sim.cancel(ev);
        }
        if stranded > 0 {
            sim.metrics()
                .inc_by(stranded as u64, || "unit.manager.stranded".into());
            sim.tracer().record_with(sim.now(), || {
                (
                    "unit_manager".into(),
                    TraceKind::Manager(ManagerPhase::UnitsStranded),
                    format!("{stranded} on silent {pilot}"),
                )
            });
        }
    }

    fn restart_or_fail(&self, sim: &mut Simulation, uid: UnitId) {
        let (give_up, rebind) = {
            let mut st = self.inner.borrow_mut();
            let max = st.config.max_attempts;
            let unit = &mut st.units[uid.0 as usize];
            let give_up = unit.attempts >= max;
            let rebind = st.config.binding == Binding::Early;
            (give_up, rebind)
        };
        if give_up {
            {
                let mut st = self.inner.borrow_mut();
                transition_unit(
                    sim,
                    &mut st.units[uid.0 as usize],
                    UnitState::Failed,
                    sim.now(),
                );
                st.stats.failed += 1;
            }
            sim.tracer().record_with(sim.now(), || {
                (
                    uid.to_string(),
                    TraceKind::Unit(UnitPhase::Failed),
                    "restarts exhausted".into(),
                )
            });
            self.fire_transition(sim, uid, UnitState::Failed);
            self.check_completion(sim);
            return;
        }
        let (backoff, checkpoint) = {
            let mut st = self.inner.borrow_mut();
            st.stats.restarts += 1;
            let interval = st.config.checkpoint_interval;
            let unit = &mut st.units[uid.0 as usize];
            // Checkpoint salvage: bank the aborted attempt's progress at
            // the last interval boundary. Only an Executing abort has
            // progress to bank; a StagingInput victim keeps whatever an
            // earlier attempt already checkpointed.
            let checkpoint = if !interval.is_zero() && unit.state == UnitState::Executing {
                let entered = unit
                    .timestamps
                    .last()
                    .map(|&(_, t)| t)
                    .unwrap_or_else(|| sim.now());
                let elapsed = sim.now().saturating_since(entered).as_secs();
                let total =
                    (unit.checkpointed.as_secs() + elapsed).min(unit.task.duration.as_secs());
                let boundary = (total / interval.as_secs()).floor() * interval.as_secs();
                if boundary > unit.checkpointed.as_secs() {
                    let delta = boundary - unit.checkpointed.as_secs();
                    unit.checkpointed = SimDuration::from_secs(boundary);
                    unit.salvaged += SimDuration::from_secs(delta);
                    Some(boundary)
                } else {
                    None
                }
            } else {
                None
            };
            let attempts = unit.attempts;
            transition_unit(
                sim,
                &mut st.units[uid.0 as usize],
                UnitState::PendingExecution,
                sim.now(),
            );
            let backoff = st.config.retry_delay(attempts);
            if backoff.is_zero() {
                st.ready.push_back(uid);
            }
            (backoff, checkpoint)
        };
        if let Some(progress) = checkpoint {
            sim.metrics().inc(|| "unit.manager.checkpoints".into());
            self.fire_salvage(
                sim,
                uid,
                SalvageEvent::Checkpoint {
                    progress_secs: progress,
                },
            );
        }
        self.fire_transition(sim, uid, UnitState::PendingExecution);
        if rebind {
            // Early-binding failover: rebind to any live pilot.
            let live = self
                .pm
                .pilots()
                .into_iter()
                .find(|p| !p.state.is_terminal())
                .map(|p| p.id);
            self.inner.borrow_mut().bound[uid.0 as usize] = live;
            if live.is_none() {
                // No pilot can ever run it: fail all its attempts now.
                let ev = {
                    let mut st = self.inner.borrow_mut();
                    st.ready.retain(|u| *u != uid);
                    transition_unit(
                        sim,
                        &mut st.units[uid.0 as usize],
                        UnitState::Failed,
                        sim.now(),
                    );
                    st.stats.failed += 1;
                    st.stats.restarts -= 1;
                    st.inflight.remove(&uid)
                };
                if let Some(ev) = ev {
                    sim.cancel(ev);
                }
                self.fire_transition(sim, uid, UnitState::Failed);
                self.check_completion(sim);
                return;
            }
        }
        sim.metrics().inc(|| "unit.manager.restarts".into());
        if backoff.is_zero() {
            sim.tracer().record_with(sim.now(), || {
                (
                    uid.to_string(),
                    TraceKind::Unit(UnitPhase::Restart),
                    String::new(),
                )
            });
        } else {
            sim.tracer().record_with(sim.now(), || {
                (
                    uid.to_string(),
                    TraceKind::Unit(UnitPhase::Restart),
                    format!("backoff {:.0}s", backoff.as_secs()),
                )
            });
            let this = self.clone();
            sim.schedule_in(backoff, move |sim| {
                {
                    let mut st = this.inner.borrow_mut();
                    // The unit may have been retracted (early binding with
                    // no live pilot) while it waited out the backoff.
                    if st.units[uid.0 as usize].state != UnitState::PendingExecution
                        || st.ready.contains(&uid)
                    {
                        return;
                    }
                    st.ready.push_back(uid);
                }
                this.request_schedule(sim);
            });
        }
    }

    /// Request a (coalesced) scheduling pass.
    fn request_schedule(&self, sim: &mut Simulation) {
        {
            let mut st = self.inner.borrow_mut();
            if st.schedule_pending {
                return;
            }
            st.schedule_pending = true;
        }
        let this = self.clone();
        sim.schedule_now(move |sim| {
            this.inner.borrow_mut().schedule_pending = false;
            this.do_schedule(sim);
        });
    }

    fn do_schedule(&self, sim: &mut Simulation) {
        let _prof = sim.profiler().scope("unit.manager");
        let now = sim.now();
        let assignments = {
            let mut st = self.inner.borrow_mut();
            let st = &mut *st;
            if st.ready.is_empty() || st.agents.is_empty() {
                return;
            }
            // Sort by pilot id: the scheduler's tie-breaking must not
            // depend on HashMap iteration order.
            let mut agent_ids: Vec<PilotId> = st.agents.keys().copied().collect();
            agent_ids.sort_unstable();
            let pilots: Vec<PilotView> = agent_ids
                .iter()
                .map(|pid| {
                    let a = &st.agents[pid];
                    PilotView {
                        id: a.pilot,
                        free_cores: a.free_cores,
                        remaining_walltime: a.remaining_walltime(now),
                    }
                })
                .collect();
            let units: Vec<UnitView> = st
                .ready
                .iter()
                .map(|uid| {
                    let u = &st.units[uid.0 as usize];
                    UnitView {
                        id: *uid,
                        cores: u.task.cores,
                        est_duration: u.task.duration,
                        bound_to: st.bound[uid.0 as usize],
                    }
                })
                .collect();
            assign(st.config.scheduler, &units, &pilots, &mut st.rr_cursor)
        };
        if assignments.is_empty() {
            return;
        }
        {
            let mut st = self.inner.borrow_mut();
            let placed: std::collections::HashSet<UnitId> =
                assignments.iter().map(|(u, _)| *u).collect();
            st.ready.retain(|u| !placed.contains(u));
        }
        for (uid, pid) in assignments {
            self.start_unit(sim, uid, pid);
        }
    }

    fn start_unit(&self, sim: &mut Simulation, uid: UnitId, pid: PilotId) {
        let now = sim.now();
        let (staging_end, resource) = {
            let mut st = self.inner.borrow_mut();
            let st = &mut *st;
            let unit = &mut st.units[uid.0 as usize];
            unit.pilot = Some(pid);
            unit.attempts += 1;
            let agent = st.agents.get_mut(&pid).expect("agent exists");
            agent.reserve(unit.task.cores);
            // Serialized middleware dispatch overhead, then the shared
            // origin staging channel.
            let overhead_start = now.max(st.overhead_busy_until);
            st.overhead_busy_until = overhead_start + st.config.dispatch_overhead;
            let (_t0, staging_end) = st
                .origin_channel
                .enqueue(st.overhead_busy_until, unit.task.input_mb());
            transition_unit(sim, unit, UnitState::StagingInput, now);
            (staging_end, agent.resource.clone())
        };
        sim.tracer().record_with(now, || {
            (
                uid.to_string(),
                TraceKind::Unit(UnitPhase::StagingInput),
                format!("{pid} {resource}"),
            )
        });
        self.fire_transition(sim, uid, UnitState::StagingInput);
        let this = self.clone();
        let ev = sim.schedule_at(staging_end, move |sim| this.on_input_staged(sim, uid));
        self.inner.borrow_mut().inflight.insert(uid, ev);
    }

    fn on_input_staged(&self, sim: &mut Simulation, uid: UnitId) {
        let _prof = sim.profiler().scope("unit.manager");
        let now = sim.now();
        let (duration, fault, resumed_from) = {
            let mut st = self.inner.borrow_mut();
            let st = &mut *st;
            let unit = &mut st.units[uid.0 as usize];
            transition_unit(sim, unit, UnitState::Executing, now);
            // Resume from the last checkpoint boundary: only the
            // remaining work runs. With checkpointing off, `checkpointed`
            // is always zero and this is exactly the task duration.
            let duration = if unit.checkpointed.is_zero() {
                unit.task.duration
            } else {
                unit.task.duration.saturating_sub(unit.checkpointed)
            };
            let resumed_from = (!unit.checkpointed.is_zero()).then(|| unit.checkpointed.as_secs());
            // Fault draw happens up front so the failure instant is part
            // of the deterministic schedule, not a race with completion.
            let fault = if st.config.unit_fault_chance > 0.0 {
                let rng = st
                    .fault_rng
                    .get_or_insert_with(|| sim.fork_rng("um.faults"));
                if rng.chance(st.config.unit_fault_chance) {
                    let at = duration * rng.uniform(0.05, 0.95);
                    let permanent = st.config.unit_fault_permanent_chance > 0.0
                        && rng.chance(st.config.unit_fault_permanent_chance);
                    Some((at, permanent))
                } else {
                    None
                }
            } else {
                None
            };
            (duration, fault, resumed_from)
        };
        sim.tracer().record_with(now, || {
            (
                uid.to_string(),
                TraceKind::Unit(UnitPhase::Executing),
                resumed_from.map_or_else(String::new, |s| format!("resume from {s:.0}s")),
            )
        });
        if let Some(salvaged_secs) = resumed_from {
            sim.metrics().inc(|| "unit.manager.resumes".into());
            self.fire_salvage(sim, uid, SalvageEvent::Resume { salvaged_secs });
        }
        self.fire_transition(sim, uid, UnitState::Executing);
        let this = self.clone();
        let ev = match fault {
            Some((at, permanent)) => {
                sim.schedule_in(at, move |sim| this.on_unit_fault(sim, uid, permanent))
            }
            None => sim.schedule_in(duration, move |sim| this.on_executed(sim, uid)),
        };
        self.inner.borrow_mut().inflight.insert(uid, ev);
    }

    /// An execution attempt died partway. Unlike pilot death, the agent
    /// survives: its cores must be handed back before the unit is retried
    /// or written off.
    fn on_unit_fault(&self, sim: &mut Simulation, uid: UnitId, permanent: bool) {
        let now = sim.now();
        {
            let mut st = self.inner.borrow_mut();
            let st = &mut *st;
            st.inflight.remove(&uid);
            let unit = &st.units[uid.0 as usize];
            let cores = unit.task.cores;
            if let Some(pid) = unit.pilot {
                if let Some(agent) = st.agents.get_mut(&pid) {
                    agent.release(cores);
                }
            }
        }
        sim.metrics().inc(|| "unit.manager.faults".into());
        sim.tracer().record_with(now, || {
            (
                uid.to_string(),
                TraceKind::Unit(UnitPhase::Fault),
                if permanent { "permanent" } else { "transient" }.into(),
            )
        });
        if permanent {
            {
                let mut st = self.inner.borrow_mut();
                transition_unit(sim, &mut st.units[uid.0 as usize], UnitState::Failed, now);
                st.stats.failed += 1;
            }
            sim.tracer().record_with(now, || {
                (
                    uid.to_string(),
                    TraceKind::Unit(UnitPhase::Failed),
                    "permanent fault".into(),
                )
            });
            self.fire_transition(sim, uid, UnitState::Failed);
            self.check_completion(sim);
        } else {
            self.restart_or_fail(sim, uid);
        }
        self.request_schedule(sim);
    }

    fn on_executed(&self, sim: &mut Simulation, uid: UnitId) {
        let _prof = sim.profiler().scope("unit.manager");
        let now = sim.now();
        let out_end = {
            let mut st = self.inner.borrow_mut();
            let st = &mut *st;
            st.inflight.remove(&uid);
            let unit = &mut st.units[uid.0 as usize];
            transition_unit(sim, unit, UnitState::StagingOutput, now);
            // Execution done: the core goes back to the pilot; output
            // staging runs over the wide-area channel, off the core.
            let cores = unit.task.cores;
            let out_mb = unit.task.output_mb();
            if let Some(pid) = unit.pilot {
                if let Some(agent) = st.agents.get_mut(&pid) {
                    agent.release(cores);
                }
            }
            let (_t0, out_end) = st.origin_channel.enqueue(now, out_mb);
            out_end
        };
        sim.tracer().record_with(now, || {
            (
                uid.to_string(),
                TraceKind::Unit(UnitPhase::StagingOutput),
                String::new(),
            )
        });
        self.fire_transition(sim, uid, UnitState::StagingOutput);
        let this = self.clone();
        sim.schedule_at(out_end, move |sim| this.on_done(sim, uid));
        self.request_schedule(sim);
    }

    fn on_done(&self, sim: &mut Simulation, uid: UnitId) {
        let _prof = sim.profiler().scope("unit.manager");
        let now = sim.now();
        let newly_ready: Vec<UnitId> = {
            let mut st = self.inner.borrow_mut();
            let st = &mut *st;
            transition_unit(sim, &mut st.units[uid.0 as usize], UnitState::Done, now);
            st.stats.done += 1;
            let mut ready = Vec::new();
            for dep in std::mem::take(&mut st.dependents[uid.0 as usize]) {
                let c = &mut st.dep_count[dep.0 as usize];
                *c -= 1;
                if *c == 0 {
                    ready.push(dep);
                }
            }
            ready
        };
        sim.tracer().record_with(now, || {
            (
                uid.to_string(),
                TraceKind::Unit(UnitPhase::Done),
                String::new(),
            )
        });
        self.fire_transition(sim, uid, UnitState::Done);
        for dep in newly_ready {
            self.make_ready(sim, dep);
        }
        self.request_schedule(sim);
        self.check_completion(sim);
    }

    fn check_completion(&self, sim: &mut Simulation) {
        let callbacks = {
            let mut st = self.inner.borrow_mut();
            if st.completion_fired || !st.stats.finished() {
                return;
            }
            st.completion_fired = true;
            std::mem::take(&mut st.on_all_done)
        };
        sim.tracer().record_with(sim.now(), || {
            (
                "unit_manager".into(),
                TraceKind::Manager(ManagerPhase::AllDone),
                format!("{:?}", self.stats()),
            )
        });
        for cb in callbacks {
            cb(sim);
        }
    }

    /// Progress counters.
    pub fn stats(&self) -> UnitManagerStats {
        self.inner.borrow().stats
    }

    /// Scale the origin staging channel's bandwidth to `factor` × the
    /// configured base (fault injection: a degraded wide-area link).
    /// Transfers already enqueued keep their end times; only transfers
    /// enqueued from now on see the changed bandwidth.
    pub fn set_origin_bandwidth_factor(&self, factor: f64) {
        let mut st = self.inner.borrow_mut();
        let base = st.config.origin_bandwidth_mbps;
        st.origin_channel.bandwidth_mbps = (base * factor).max(1e-6);
    }

    /// Snapshot of one unit.
    pub fn unit(&self, uid: UnitId) -> ComputeUnit {
        self.inner.borrow().units[uid.0 as usize].clone()
    }

    /// Snapshot of all units.
    pub fn units(&self) -> Vec<ComputeUnit> {
        self.inner.borrow().units.clone()
    }

    /// The pilot manager this unit manager feeds.
    pub fn pilot_manager(&self) -> PilotManager {
        self.pm.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::description::PilotDescription;
    use aimes_cluster::{Cluster, ClusterConfig};
    use aimes_saga::Session;
    use aimes_sim::SimRng;
    use aimes_skeleton::{paper_bag, SkeletonApp, TaskDurationSpec};

    fn d(s: f64) -> SimDuration {
        SimDuration::from_secs(s)
    }

    fn setup(resources: &[(&str, u32)]) -> (Simulation, PilotManager) {
        let sim = Simulation::new(23);
        let mut session = Session::new();
        for (name, cores) in resources {
            session.add_resource(&sim, Cluster::new(ClusterConfig::test(name, *cores)));
        }
        let pm = PilotManager::new(Rc::new(session));
        pm.set_bootstrap_delay(d(10.0));
        (sim, pm)
    }

    fn bag_tasks(n: u32) -> Vec<TaskSpec> {
        let cfg = paper_bag(n, TaskDurationSpec::Uniform15Min);
        SkeletonApp::generate(&cfg, &mut SimRng::new(1))
            .unwrap()
            .tasks()
            .to_vec()
    }

    #[test]
    fn early_binding_single_pilot_runs_bag() {
        let (mut sim, pm) = setup(&[("stampede", 64)]);
        let um = UnitManager::new(
            pm.clone(),
            UmConfig::new(Binding::Early, UnitScheduler::Direct),
        );
        pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 16, d(4000.0))],
        );
        um.submit_units(&mut sim, &bag_tasks(16));
        let pm2 = pm.clone();
        um.on_all_done(move |sim| pm2.cancel_all(sim));
        sim.run_to_completion();
        let stats = um.stats();
        assert_eq!(stats.done, 16);
        assert_eq!(stats.failed, 0);
        assert!(stats.finished());
        // All 16 ran concurrently: executing spans overlap; total time
        // roughly setup + staging + 900 s.
        assert!(sim.now().as_secs() < 1200.0, "took {}", sim.now());
        for u in um.units() {
            assert_eq!(u.state, UnitState::Done);
            assert_eq!(u.attempts, 1);
        }
    }

    #[test]
    fn late_binding_backfill_over_three_pilots() {
        let (mut sim, pm) = setup(&[("stampede", 64), ("gordon", 64), ("trestles", 64)]);
        let um = UnitManager::new(
            pm.clone(),
            UmConfig::new(Binding::Late, UnitScheduler::Backfill),
        );
        // 3 pilots, each a third of the tasks' cores; tasks flow to
        // whichever activates first.
        for r in ["stampede", "gordon", "trestles"] {
            pm.submit(&mut sim, vec![PilotDescription::new(r, 8, d(8000.0))]);
        }
        um.submit_units(&mut sim, &bag_tasks(24));
        let pm2 = pm.clone();
        um.on_all_done(move |sim| pm2.cancel_all(sim));
        sim.run_to_completion();
        assert_eq!(um.stats().done, 24);
        // All three pilots should have executed something.
        let mut used: Vec<PilotId> = um.units().iter().filter_map(|u| u.pilot).collect();
        used.sort();
        used.dedup();
        assert_eq!(used.len(), 3, "all pilots should run units");
        // Pilots were cancelled after completion, not run to walltime.
        for p in pm.pilots() {
            assert_eq!(p.state, PilotState::Canceled);
        }
    }

    #[test]
    fn sequential_waves_when_pilot_smaller_than_bag() {
        let (mut sim, pm) = setup(&[("stampede", 64)]);
        let um = UnitManager::new(
            pm.clone(),
            UmConfig::new(Binding::Late, UnitScheduler::Backfill),
        );
        pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 4, d(8000.0))],
        );
        um.submit_units(&mut sim, &bag_tasks(8));
        let pm2 = pm.clone();
        um.on_all_done(move |sim| pm2.cancel_all(sim));
        sim.run_to_completion();
        assert_eq!(um.stats().done, 8);
        // Two waves of 900 s on 4 cores: at least 1800 s.
        assert!(sim.now().as_secs() >= 1800.0);
    }

    #[test]
    fn dependencies_gate_scheduling() {
        use aimes_skeleton::{map_reduce, SkeletonApp};
        use aimes_workload::Distribution;
        let (mut sim, pm) = setup(&[("stampede", 64)]);
        let um = UnitManager::new(
            pm.clone(),
            UmConfig::new(Binding::Late, UnitScheduler::Backfill),
        );
        pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 16, d(8000.0))],
        );
        let dur = Distribution::Constant { value: 100.0 };
        let cfg = map_reduce("mr", 8, 2, dur.clone(), dur, 1.0, 0.1, 1);
        let app = SkeletonApp::generate(&cfg, &mut SimRng::new(2)).unwrap();
        um.submit_units(&mut sim, app.tasks());
        let pm2 = pm.clone();
        um.on_all_done(move |sim| pm2.cancel_all(sim));
        sim.run_to_completion();
        assert_eq!(um.stats().done, 10);
        // Each reduce must start staging only after *its own* maps are
        // done (many-to-one fan-in of 4 maps per reduce).
        let units = um.units();
        for r in &units[8..] {
            let deps_done = r
                .task
                .dependencies
                .iter()
                .map(|d| units[d.0 as usize].last_time_of(UnitState::Done).unwrap())
                .fold(SimTime::ZERO, SimTime::max);
            let staged = r.last_time_of(UnitState::StagingInput).unwrap();
            assert!(staged >= deps_done);
        }
    }

    #[test]
    fn units_restart_when_pilot_dies_midway() {
        let (mut sim, pm) = setup(&[("stampede", 64), ("gordon", 64)]);
        let um = UnitManager::new(
            pm.clone(),
            UmConfig::new(Binding::Late, UnitScheduler::RoundRobin),
        );
        // Pilot 0: walltime shorter than the tasks (900 s each) → its
        // units are interrupted and must restart; pilot 1 is big enough.
        pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 8, d(400.0))],
        );
        pm.submit(
            &mut sim,
            vec![PilotDescription::new("gordon", 8, d(20_000.0))],
        );
        um.submit_units(&mut sim, &bag_tasks(8));
        let pm2 = pm.clone();
        um.on_all_done(move |sim| pm2.cancel_all(sim));
        sim.run_to_completion();
        let stats = um.stats();
        assert_eq!(stats.done, 8, "{stats:?}");
        assert!(stats.restarts > 0, "expected restarts, got {stats:?}");
    }

    #[test]
    fn units_fail_after_max_attempts() {
        let (mut sim, pm) = setup(&[("stampede", 64)]);
        let mut cfg = UmConfig::new(Binding::Late, UnitScheduler::RoundRobin);
        cfg.max_attempts = 2;
        let um = UnitManager::new(pm.clone(), cfg);
        // Two consecutive short pilots; round robin keeps scheduling the
        // 900 s tasks into 300 s pilots, exhausting attempts.
        pm.submit(
            &mut sim,
            vec![
                PilotDescription::new("stampede", 8, d(300.0)),
                PilotDescription::new("stampede", 8, d(300.0)),
            ],
        );
        um.submit_units(&mut sim, &bag_tasks(8));
        sim.run_to_completion();
        let stats = um.stats();
        assert!(stats.finished());
        assert_eq!(stats.failed, 8, "{stats:?}");
    }

    #[test]
    fn transient_unit_faults_retry_to_completion() {
        let (mut sim, pm) = setup(&[("stampede", 64)]);
        let mut cfg = UmConfig::new(Binding::Late, UnitScheduler::Backfill);
        cfg.unit_fault_chance = 0.5;
        cfg.max_attempts = 50; // transient faults only: retries always win
        let um = UnitManager::new(pm.clone(), cfg);
        pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 16, d(40_000.0))],
        );
        um.submit_units(&mut sim, &bag_tasks(16));
        let pm2 = pm.clone();
        um.on_all_done(move |sim| pm2.cancel_all(sim));
        sim.run_to_completion();
        let stats = um.stats();
        assert_eq!(stats.done, 16, "{stats:?}");
        assert_eq!(stats.failed, 0);
        assert!(stats.restarts > 0, "50 % fault rate must restart some");
        // Cores were handed back after every fault: nothing leaked, every
        // retried unit found a free slot again.
        for u in um.units() {
            assert_eq!(u.state, UnitState::Done);
        }
    }

    #[test]
    fn permanent_unit_faults_fail_without_retry() {
        let (mut sim, pm) = setup(&[("stampede", 64)]);
        let mut cfg = UmConfig::new(Binding::Late, UnitScheduler::Backfill);
        cfg.unit_fault_chance = 1.0;
        cfg.unit_fault_permanent_chance = 1.0;
        let um = UnitManager::new(pm.clone(), cfg);
        pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 16, d(40_000.0))],
        );
        um.submit_units(&mut sim, &bag_tasks(8));
        let pm2 = pm.clone();
        um.on_all_done(move |sim| pm2.cancel_all(sim));
        sim.run_to_completion();
        let stats = um.stats();
        assert_eq!(stats.failed, 8, "{stats:?}");
        assert_eq!(stats.done, 0);
        assert_eq!(stats.restarts, 0, "permanent faults must not retry");
        assert!(stats.finished());
    }

    #[test]
    fn retry_backoff_delays_restart() {
        let run = |backoff: f64| {
            let (mut sim, pm) = setup(&[("stampede", 64)]);
            let mut cfg = UmConfig::new(Binding::Late, UnitScheduler::Backfill);
            cfg.unit_fault_chance = 1.0; // every attempt faults...
            cfg.max_attempts = 4;
            cfg.retry_backoff = d(backoff);
            cfg.retry_backoff_cap = d(backoff * 8.0);
            let um = UnitManager::new(pm.clone(), cfg);
            pm.submit(
                &mut sim,
                vec![PilotDescription::new("stampede", 16, d(40_000.0))],
            );
            um.submit_units(&mut sim, &bag_tasks(4));
            sim.run_to_completion();
            let stats = um.stats();
            assert!(stats.finished());
            assert_eq!(stats.failed, 4, "{stats:?}");
            um.units()
                .iter()
                .filter_map(|u| u.last_time_of(UnitState::Failed))
                .max()
                .unwrap()
        };
        // Same fault pattern (same seed), but each of the 3 retries per
        // unit waits 100/200/400 s: the backoff run must finish at least
        // 700 s later than the immediate-restart run.
        let immediate = run(0.0);
        let delayed = run(100.0);
        assert!(
            delayed.since(immediate) >= d(700.0),
            "immediate {immediate:?} vs delayed {delayed:?}"
        );
    }

    #[test]
    fn retry_delay_honors_the_cap_as_given() {
        let mut cfg = UmConfig::new(Binding::Late, UnitScheduler::Backfill);
        cfg.retry_backoff = d(100.0);
        cfg.retry_backoff_cap = d(150.0);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.retry_delay(1), d(100.0));
        // Regression: a deliberately-low cap used to be widened to
        // max(cap, backoff * 2^k); it must clamp exactly where set.
        assert_eq!(cfg.retry_delay(2), d(150.0));
        assert_eq!(cfg.retry_delay(10), d(150.0));
        // An inverted cap is a validation error now, not a silent widen.
        cfg.retry_backoff_cap = d(50.0);
        assert!(cfg.validate().unwrap_err().contains("inverted cap"));
        assert_eq!(cfg.retry_delay(1), d(50.0), "cap honored even inverted");
    }

    #[test]
    fn config_validate_rejects_degenerate_settings() {
        let good = UmConfig::new(Binding::Late, UnitScheduler::Backfill);
        assert!(good.validate().is_ok());
        let mut cfg = good.clone();
        cfg.max_attempts = 0;
        assert!(cfg.validate().unwrap_err().contains("max_attempts"));
        // Zero backoff with zero cap is the legacy no-delay config: fine.
        let mut cfg = good;
        cfg.retry_backoff = SimDuration::ZERO;
        cfg.retry_backoff_cap = SimDuration::ZERO;
        assert!(cfg.validate().is_ok());
    }

    proptest::proptest! {
        /// `retry_delay` is monotone in the attempt count, saturates at
        /// the cap, and never overflows even at absurd attempt counts.
        #[test]
        fn prop_retry_delay_monotone_and_capped(
            base in 1.0f64..600.0,
            cap_factor in 1.0f64..64.0,
            attempts in 1u32..10_000,
        ) {
            let mut cfg = UmConfig::new(Binding::Late, UnitScheduler::Backfill);
            cfg.retry_backoff = d(base);
            cfg.retry_backoff_cap = d(base * cap_factor);
            proptest::prop_assert!(cfg.validate().is_ok());
            let delay = cfg.retry_delay(attempts);
            proptest::prop_assert!(delay.as_secs().is_finite());
            proptest::prop_assert!(delay >= d(0.0));
            proptest::prop_assert!(delay <= cfg.retry_backoff_cap);
            proptest::prop_assert!(delay <= cfg.retry_delay(attempts + 1));
            // Saturation: far past the cap crossover, the delay is pinned.
            proptest::prop_assert_eq!(cfg.retry_delay(40), cfg.retry_delay(100_000));
            proptest::prop_assert_eq!(cfg.retry_delay(40), cfg.retry_backoff_cap);
        }
    }

    #[test]
    fn checkpointed_units_resume_from_the_boundary() {
        // Pilot 0 dies at walltime 400 s mid-execution (tasks are 900 s);
        // pilot 1 picks the victims up. With a 60 s checkpoint interval
        // the restarted units resume partway instead of from zero.
        let run = |interval: f64| {
            let (mut sim, pm) = setup(&[("stampede", 64), ("gordon", 64)]);
            let mut cfg = UmConfig::new(Binding::Late, UnitScheduler::RoundRobin);
            cfg.checkpoint_interval = d(interval);
            let um = UnitManager::new(pm.clone(), cfg);
            let salvage: Rc<RefCell<Vec<(UnitId, SalvageEvent)>>> =
                Rc::new(RefCell::new(Vec::new()));
            let s2 = salvage.clone();
            um.on_salvage(move |_, uid, ev| s2.borrow_mut().push((uid, ev)));
            pm.submit(
                &mut sim,
                vec![PilotDescription::new("stampede", 8, d(400.0))],
            );
            pm.submit(
                &mut sim,
                vec![PilotDescription::new("gordon", 8, d(20_000.0))],
            );
            um.submit_units(&mut sim, &bag_tasks(8));
            let pm2 = pm.clone();
            um.on_all_done(move |sim| pm2.cancel_all(sim));
            sim.run_to_completion();
            let stats = um.stats();
            assert_eq!(stats.done, 8, "{stats:?}");
            assert!(stats.restarts > 0, "short pilot must interrupt units");
            let events = salvage.borrow().clone();
            (sim.now(), um.units(), events)
        };
        let (plain_ttc, plain_units, plain_events) = run(0.0);
        assert!(plain_units.iter().all(|u| u.salvaged.is_zero()));
        assert!(plain_events.is_empty(), "no events with checkpointing off");

        let (ck_ttc, ck_units, ck_events) = run(60.0);
        let salvaged: f64 = ck_units.iter().map(|u| u.salvaged.as_secs()).sum();
        assert!(salvaged > 0.0, "interrupted units must bank progress");
        for u in &ck_units {
            let b = u.checkpointed.as_secs();
            assert!(
                (b / 60.0 - (b / 60.0).round()).abs() < 1e-9,
                "checkpoint {b}s is not on a 60 s boundary"
            );
            assert_eq!(u.checkpointed, u.salvaged, "single-resume accounting");
        }
        // Every banked checkpoint was followed by a resume carrying it.
        let checkpoints: Vec<_> = ck_events
            .iter()
            .filter(|(_, e)| matches!(e, SalvageEvent::Checkpoint { .. }))
            .collect();
        let resumes: Vec<_> = ck_events
            .iter()
            .filter(|(_, e)| matches!(e, SalvageEvent::Resume { .. }))
            .collect();
        assert!(!checkpoints.is_empty());
        assert_eq!(checkpoints.len(), resumes.len());
        // Resuming partway beats redoing the work from zero.
        assert!(
            ck_ttc < plain_ttc,
            "resume must finish earlier ({ck_ttc:?} vs {plain_ttc:?})"
        );
    }

    #[test]
    fn degraded_origin_channel_slows_staging() {
        let run = |factor: f64| {
            let (mut sim, pm) = setup(&[("stampede", 64)]);
            let um = UnitManager::new(
                pm.clone(),
                UmConfig::new(Binding::Late, UnitScheduler::Backfill),
            );
            pm.submit(
                &mut sim,
                vec![PilotDescription::new("stampede", 16, d(40_000.0))],
            );
            um.set_origin_bandwidth_factor(factor);
            um.submit_units(&mut sim, &bag_tasks(16));
            let pm2 = pm.clone();
            um.on_all_done(move |sim| pm2.cancel_all(sim));
            sim.run_to_completion();
            assert_eq!(um.stats().done, 16);
            sim.now()
        };
        let healthy = run(1.0);
        let degraded = run(0.1);
        assert!(
            degraded > healthy,
            "10× slower staging must lengthen the run ({healthy:?} vs {degraded:?})"
        );
    }

    #[test]
    fn backfill_refuses_pilot_too_short_for_tasks() {
        let (mut sim, pm) = setup(&[("stampede", 64), ("gordon", 64)]);
        let um = UnitManager::new(
            pm.clone(),
            UmConfig::new(Binding::Late, UnitScheduler::Backfill),
        );
        // Short pilot: backfill must never place 900 s tasks there.
        pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 8, d(400.0))],
        );
        pm.submit(
            &mut sim,
            vec![PilotDescription::new("gordon", 8, d(20_000.0))],
        );
        um.submit_units(&mut sim, &bag_tasks(8));
        let pm2 = pm.clone();
        um.on_all_done(move |sim| pm2.cancel_all(sim));
        sim.run_to_completion();
        let stats = um.stats();
        assert_eq!(stats.done, 8);
        assert_eq!(stats.restarts, 0, "backfill should avoid the short pilot");
        for u in um.units() {
            assert_eq!(u.pilot, Some(PilotId(1)));
        }
    }

    #[test]
    fn staging_is_serialized_on_origin_channel() {
        let (mut sim, pm) = setup(&[("stampede", 64)]);
        let mut cfg = UmConfig::new(Binding::Late, UnitScheduler::Backfill);
        cfg.origin_bandwidth_mbps = 1.0; // 1 MB file → 1 s each + 0.1 lat
        cfg.dispatch_overhead = SimDuration::ZERO;
        let um = UnitManager::new(pm.clone(), cfg);
        pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 16, d(8000.0))],
        );
        um.submit_units(&mut sim, &bag_tasks(16));
        let pm2 = pm.clone();
        um.on_all_done(move |sim| pm2.cancel_all(sim));
        sim.run_to_completion();
        // Execution starts must be staggered by ~1.1 s (serialized
        // staging), even though all cores were free.
        let mut starts: Vec<f64> = um
            .units()
            .iter()
            .map(|u| u.last_time_of(UnitState::Executing).unwrap().as_secs())
            .collect();
        starts.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let span = starts.last().unwrap() - starts.first().unwrap();
        assert!(span >= 15.0 * 1.0, "staging stagger {span}");
    }

    #[test]
    fn transition_subscribers_observe_the_full_lifecycle() {
        let (mut sim, pm) = setup(&[("stampede", 64)]);
        let um = UnitManager::new(
            pm.clone(),
            UmConfig::new(Binding::Late, UnitScheduler::Backfill),
        );
        let seen: Rc<RefCell<Vec<(UnitId, UnitState)>>> = Rc::new(RefCell::new(Vec::new()));
        let seen2 = seen.clone();
        um.subscribe(move |_, uid, state| seen2.borrow_mut().push((uid, state)));
        pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 8, d(4000.0))],
        );
        um.submit_units(&mut sim, &bag_tasks(4));
        let pm2 = pm.clone();
        um.on_all_done(move |sim| pm2.cancel_all(sim));
        sim.run_to_completion();
        let seen = seen.borrow();
        for i in 0..4u32 {
            let path: Vec<UnitState> = seen
                .iter()
                .filter(|(u, _)| *u == UnitId(i))
                .map(|(_, s)| *s)
                .collect();
            assert_eq!(
                path,
                vec![
                    UnitState::PendingExecution,
                    UnitState::StagingInput,
                    UnitState::Executing,
                    UnitState::StagingOutput,
                    UnitState::Done,
                ],
                "unit {i} history"
            );
        }
    }

    #[test]
    fn all_done_fires_exactly_once() {
        let (mut sim, pm) = setup(&[("stampede", 64)]);
        let um = UnitManager::new(
            pm.clone(),
            UmConfig::new(Binding::Late, UnitScheduler::Backfill),
        );
        pm.submit(
            &mut sim,
            vec![PilotDescription::new("stampede", 8, d(4000.0))],
        );
        um.submit_units(&mut sim, &bag_tasks(8));
        let fired = Rc::new(RefCell::new(0u32));
        let f2 = fired.clone();
        um.on_all_done(move |_| *f2.borrow_mut() += 1);
        let pm2 = pm.clone();
        um.on_all_done(move |sim| pm2.cancel_all(sim));
        sim.run_to_completion();
        assert_eq!(*fired.borrow(), 1);
    }
}
