//! # aimes-pilot — the pilot abstraction
//!
//! §III-C: "Pilots generalize the common concept of a resource placeholder.
//! A pilot is submitted to the scheduler of a resource, and once active,
//! accepts and executes tasks directly submitted to it. In this way, the
//! tasks are executed within the time and space boundaries set by the
//! resource's scheduler for the pilot, trading the scheduler overhead for
//! each task with an overhead for a single pilot."
//!
//! This crate reproduces the RADICAL-Pilot architecture the paper extends:
//!
//! * [`description`] — [`description::PilotDescription`]: resource, cores,
//!   walltime.
//! * [`pilot`] — the pilot state model with instrumented transition
//!   timestamps ("timers and introspection tools record each state
//!   transition"), the capability the paper says other pilot systems lack.
//! * [`mod@unit`] — compute units (tasks) with their own instrumented state
//!   model and automatic restart on failure.
//! * [`pilot_manager`] — submits pilots through the SAGA layer and tracks
//!   their activation.
//! * [`unit_manager`] — binds units to pilots under a pluggable
//!   [`scheduler`]: early binding (direct submission / round robin before
//!   activation) or late binding with backfill onto whichever pilots are
//!   active and have capacity and remaining walltime.
//! * [`agent`] — the per-pilot executor: core slots, input/output staging
//!   through the resource's (serialized) wide-area channel, execution.

//! * [`detector`] — signal-based failure detection: heartbeats through
//!   the SAGA channel feed a per-pilot suspicion state machine
//!   (`Healthy → Suspected → Declared-Dead`, timeout or phi-accrual), so
//!   recovery reacts to *observed* silence instead of injection oracles.

pub mod agent;
pub mod description;
pub mod detector;
pub mod pilot;
pub mod pilot_manager;
pub mod scheduler;
pub mod unit;
pub mod unit_manager;

pub use description::PilotDescription;
pub use detector::{
    DetectionMode, DetectionPolicy, DetectorEvent, DetectorVerdict, HealthState, SuspicionDetector,
};
pub use pilot::{Pilot, PilotId, PilotState};
pub use pilot_manager::{PilotManager, PilotRecovery};
pub use scheduler::{Binding, UnitScheduler};
pub use unit::{ComputeUnit, UnitId, UnitState};
pub use unit_manager::{SalvageEvent, UmConfig, UnitManager, UnitManagerStats};
