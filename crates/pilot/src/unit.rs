//! Compute units: the pilot-level representation of application tasks.
//!
//! Units carry the same instrumented-state-model discipline as pilots. The
//! staging states make the Ts component of TTC measurable per unit, and
//! the restart counter implements "tasks are automatically restarted in
//! case of failure" (§III-E).

use crate::pilot::PilotId;
use aimes_sim::{SimDuration, SimTime};
use aimes_skeleton::TaskSpec;
use serde::{Deserialize, Serialize};

/// Unit identifier (manager-scoped; equals the task id for skeleton apps).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UnitId(pub u32);

impl std::fmt::Display for UnitId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unit.{:05}", self.0)
    }
}

/// Unit state model.
///
/// ```text
/// New ─► PendingExecution ─► StagingInput ─► Executing ─► StagingOutput ─► Done
///  │            ▲                  │             │                │
///  │            └──────restart─────┴──────◄──────┴───────◄────────┘
///  │                                                (pilot died / error)
///  └► Canceled   ...and any live state ─► Failed (restarts exhausted)
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum UnitState {
    /// Known to the unit manager; waiting for dependencies.
    New,
    /// Eligible; waiting to be scheduled onto an active pilot (late
    /// binding) or for its bound pilot to activate (early binding).
    PendingExecution,
    /// Input files moving to the pilot's resource.
    StagingInput,
    Executing,
    /// Output files moving back to the origin.
    StagingOutput,
    Done,
    Failed,
    Canceled,
}

impl UnitState {
    /// True for states a unit never leaves.
    pub fn is_terminal(self) -> bool {
        matches!(
            self,
            UnitState::Done | UnitState::Failed | UnitState::Canceled
        )
    }

    /// Legal transition check. A restart is a transition back to
    /// `PendingExecution` from an in-flight state.
    pub fn can_transition_to(self, next: UnitState) -> bool {
        use UnitState::*;
        matches!(
            (self, next),
            (New, PendingExecution)
                | (New, Canceled)
                | (PendingExecution, StagingInput)
                | (PendingExecution, Canceled)
                | (PendingExecution, Failed)
                | (StagingInput, Executing)
                | (StagingInput, PendingExecution) // restart
                | (StagingInput, Failed)
                | (StagingInput, Canceled)
                | (Executing, StagingOutput)
                | (Executing, PendingExecution) // restart
                | (Executing, Failed)
                | (Executing, Canceled)
                | (StagingOutput, Done)
                | (StagingOutput, PendingExecution) // restart
                | (StagingOutput, Failed)
                | (StagingOutput, Canceled)
        )
    }
}

/// A unit tracked by the unit manager.
#[derive(Clone, Debug)]
pub struct ComputeUnit {
    pub id: UnitId,
    pub task: TaskSpec,
    pub state: UnitState,
    /// Pilot currently (or last) executing this unit.
    pub pilot: Option<PilotId>,
    /// Execution attempts so far (1 = first try).
    pub attempts: u32,
    /// Checkpointed execution progress: the last boundary an aborted
    /// attempt can resume from. Zero unless checkpointing is enabled.
    pub checkpointed: SimDuration,
    /// Total execution time carried across attempts via checkpoints —
    /// aborted work that did *not* have to be redone.
    pub salvaged: SimDuration,
    /// Instrumented transitions.
    pub timestamps: Vec<(UnitState, SimTime)>,
}

impl ComputeUnit {
    pub(crate) fn new(id: UnitId, task: TaskSpec, now: SimTime) -> Self {
        ComputeUnit {
            id,
            task,
            state: UnitState::New,
            pilot: None,
            attempts: 0,
            checkpointed: SimDuration::ZERO,
            salvaged: SimDuration::ZERO,
            timestamps: vec![(UnitState::New, now)],
        }
    }

    pub(crate) fn transition(&mut self, next: UnitState, now: SimTime) {
        assert!(
            self.state.can_transition_to(next),
            "illegal unit transition {:?} -> {:?} for {}",
            self.state,
            next,
            self.id
        );
        self.state = next;
        self.timestamps.push((next, now));
    }

    /// Time of the *latest* occurrence of `state` (restarts repeat states).
    pub fn last_time_of(&self, state: UnitState) -> Option<SimTime> {
        self.timestamps
            .iter()
            .rev()
            .find(|(s, _)| *s == state)
            .map(|(_, t)| *t)
    }

    /// All `(state, time)` pairs for `state` in order (restart-aware).
    pub fn times_of(&self, state: UnitState) -> Vec<SimTime> {
        self.timestamps
            .iter()
            .filter(|(s, _)| *s == state)
            .map(|(_, t)| *t)
            .collect()
    }

    /// Wall time spent executing in the successful attempt.
    pub fn execution_span(&self) -> Option<SimDuration> {
        let start = self.last_time_of(UnitState::Executing)?;
        let end = self.last_time_of(UnitState::StagingOutput)?;
        (end >= start).then(|| end.since(start))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aimes_skeleton::{FileSpec, TaskId};

    fn t(s: f64) -> SimTime {
        SimTime::from_secs(s)
    }

    fn task() -> TaskSpec {
        TaskSpec {
            id: TaskId(0),
            stage: 0,
            stage_name: "bag".into(),
            cores: 1,
            duration: SimDuration::from_mins(15.0),
            inputs: vec![FileSpec {
                name: "in".into(),
                size_mb: 1.0,
            }],
            outputs: vec![FileSpec {
                name: "out".into(),
                size_mb: 0.002,
            }],
            dependencies: vec![],
        }
    }

    #[test]
    fn happy_path_with_timestamps() {
        let mut u = ComputeUnit::new(UnitId(0), task(), t(0.0));
        u.transition(UnitState::PendingExecution, t(1.0));
        u.transition(UnitState::StagingInput, t(10.0));
        u.transition(UnitState::Executing, t(12.0));
        u.transition(UnitState::StagingOutput, t(912.0));
        u.transition(UnitState::Done, t(913.0));
        assert_eq!(u.execution_span(), Some(SimDuration::from_secs(900.0)));
        assert_eq!(u.timestamps.len(), 6);
    }

    #[test]
    fn restart_path_is_legal_and_tracked() {
        let mut u = ComputeUnit::new(UnitId(0), task(), t(0.0));
        u.transition(UnitState::PendingExecution, t(1.0));
        u.transition(UnitState::StagingInput, t(2.0));
        u.transition(UnitState::Executing, t(4.0));
        // Pilot died: restart.
        u.transition(UnitState::PendingExecution, t(100.0));
        u.transition(UnitState::StagingInput, t(200.0));
        u.transition(UnitState::Executing, t(202.0));
        u.transition(UnitState::StagingOutput, t(1102.0));
        u.transition(UnitState::Done, t(1103.0));
        assert_eq!(u.times_of(UnitState::Executing), vec![t(4.0), t(202.0)]);
        assert_eq!(u.execution_span(), Some(SimDuration::from_secs(900.0)));
    }

    #[test]
    #[should_panic(expected = "illegal unit transition")]
    fn cannot_skip_staging() {
        let mut u = ComputeUnit::new(UnitId(0), task(), t(0.0));
        u.transition(UnitState::PendingExecution, t(1.0));
        u.transition(UnitState::Executing, t(2.0));
    }

    #[test]
    fn terminal_states() {
        use UnitState::*;
        for s in [Done, Failed, Canceled] {
            assert!(s.is_terminal());
        }
        for s in [
            New,
            PendingExecution,
            StagingInput,
            Executing,
            StagingOutput,
        ] {
            assert!(!s.is_terminal());
        }
    }

    #[test]
    fn execution_span_none_before_completion() {
        let mut u = ComputeUnit::new(UnitId(0), task(), t(0.0));
        assert!(u.execution_span().is_none());
        u.transition(UnitState::PendingExecution, t(1.0));
        u.transition(UnitState::StagingInput, t(2.0));
        u.transition(UnitState::Executing, t(3.0));
        assert!(u.execution_span().is_none());
    }
}
