//! End-to-end detection-layer tests: pilots die (or merely look dead) and
//! the pilot manager must react purely to the signals it can observe —
//! missed heartbeats and status queries — never to injection ground truth.

use aimes_cluster::{Cluster, ClusterConfig};
use aimes_pilot::{
    Binding, DetectionPolicy, PilotDescription, PilotManager, PilotRecovery, PilotState, UmConfig,
    UnitManager, UnitScheduler, UnitState,
};
use aimes_saga::Session;
use aimes_sim::{SimDuration, SimRng, SimTime, Simulation};
use aimes_skeleton::{paper_bag, SkeletonApp, TaskDurationSpec, TaskSpec};
use std::rc::Rc;

fn d(s: f64) -> SimDuration {
    SimDuration::from_secs(s)
}

/// Tight timings so the tests stay fast: 30 s heartbeats, suspect after
/// 90 s of silence, declare after 240 s.
fn quick_policy() -> DetectionPolicy {
    DetectionPolicy {
        heartbeat_interval: d(30.0),
        suspect_after: d(90.0),
        declare_after: d(240.0),
        ..DetectionPolicy::default()
    }
}

fn setup(seed: u64) -> (Simulation, PilotManager, UnitManager) {
    let sim = Simulation::new(seed);
    let mut session = Session::new();
    session.add_resource(&sim, Cluster::new(ClusterConfig::test("stampede", 64)));
    let pm = PilotManager::new(Rc::new(session));
    pm.set_bootstrap_delay(d(10.0));
    pm.set_detection(quick_policy());
    let um = UnitManager::new(
        pm.clone(),
        UmConfig::new(Binding::Late, UnitScheduler::Backfill),
    );
    (sim, pm, um)
}

fn bag_tasks(n: u32) -> Vec<TaskSpec> {
    let cfg = paper_bag(n, TaskDurationSpec::Uniform15Min);
    SkeletonApp::generate(&cfg, &mut SimRng::new(1))
        .unwrap()
        .tasks()
        .to_vec()
}

#[test]
fn silent_death_is_declared_and_recovered_without_an_oracle() {
    let (mut sim, pm, um) = setup(23);
    pm.set_recovery(PilotRecovery {
        backoff: d(30.0),
        ..Default::default()
    });
    pm.submit(
        &mut sim,
        vec![PilotDescription::new("stampede", 16, d(40_000.0))],
    );
    um.submit_units(&mut sim, &bag_tasks(8));
    let pm2 = pm.clone();
    um.on_all_done(move |sim| pm2.cancel_all(sim));
    // A 2000 s outage at t = 300 kills the pilot's batch job. Nobody
    // tells the pilot manager: it must notice the silence on its own.
    let cluster = pm.session().service("stampede").unwrap().cluster();
    sim.schedule_at(SimTime::from_secs(300.0), move |sim| {
        cluster.inject_outage(sim, d(2_000.0), true);
    });
    sim.run_to_completion();

    let stats = um.stats();
    assert_eq!(stats.done, 8, "{stats:?}");
    assert_eq!(pm.replacements(), 1);
    // Exactly one detection, with a Td bounded by the declare timeout
    // (the status-query confirmation should make it much shorter).
    let tds = pm.detection_times();
    assert_eq!(tds.len(), 1, "one silent death, one detection");
    let td = tds[0].as_secs();
    assert!(td > 0.0 && td < 240.0, "Td = {td}");
    // The recovery path ran on observed signals, visible in the trace.
    let events: Vec<String> = sim
        .tracer()
        .snapshot()
        .iter()
        .map(|e| e.event.clone())
        .collect();
    for needed in ["WentSilent", "UnitsStranded", "DeclaredDead"] {
        assert!(events.iter().any(|e| e == needed), "missing {needed}");
    }
    // During the silent window the client-visible unit states froze:
    // every stranded unit restarted exactly at declaration, not before.
    let declared = pm.detection_windows()[0].1;
    for u in um.units() {
        assert_eq!(u.state, UnitState::Done);
        if u.attempts > 1 {
            assert_eq!(u.last_time_of(UnitState::PendingExecution), Some(declared));
        }
    }
}

#[test]
fn delayed_heartbeats_recover_without_replacement() {
    let (mut sim, pm, um) = setup(23);
    pm.set_recovery(PilotRecovery::default());
    pm.submit(
        &mut sim,
        vec![PilotDescription::new("stampede", 16, d(40_000.0))],
    );
    um.submit_units(&mut sim, &bag_tasks(8));
    let pm2 = pm.clone();
    um.on_all_done(move |sim| pm2.cancel_all(sim));
    // A slow WAN window: heartbeats emitted in [300, 500] land 120 s
    // late — past the suspect threshold (90 s), short of the declare
    // threshold (240 s). The pilot is alive the whole time.
    pm.inject_heartbeat_delay(
        "stampede",
        SimTime::from_secs(300.0),
        SimTime::from_secs(500.0),
        d(120.0),
    );
    sim.run_to_completion();

    let stats = um.stats();
    assert_eq!(stats.done, 8, "{stats:?}");
    assert!(
        pm.false_suspicions() >= 1,
        "the 120 s delay must trip a suspicion"
    );
    // ...but the resumed heartbeats cleared it: no declaration, no
    // replacement, no restarted units.
    assert_eq!(pm.replacements(), 0);
    assert!(pm.detection_times().is_empty());
    assert_eq!(stats.restarts, 0);
    assert_eq!(pm.pilots()[0].state, PilotState::Canceled);
}

#[test]
fn stale_heartbeats_after_declaration_do_not_resurrect_the_pilot() {
    let (mut sim, pm, um) = setup(23);
    pm.set_recovery(PilotRecovery {
        backoff: d(30.0),
        ..Default::default()
    });
    pm.submit(
        &mut sim,
        vec![PilotDescription::new("stampede", 16, d(40_000.0))],
    );
    um.submit_units(&mut sim, &bag_tasks(8));
    let pm2 = pm.clone();
    um.on_all_done(move |sim| pm2.cancel_all(sim));
    // A partition delays every heartbeat emitted in [100, 400] by a full
    // hour. By its evidence the detector rightly declares the (live)
    // pilot dead; when the delayed heartbeats finally land they must be
    // dropped as stale, not resurrect a terminal pilot.
    pm.inject_heartbeat_delay(
        "stampede",
        SimTime::from_secs(100.0),
        SimTime::from_secs(400.0),
        d(3_600.0),
    );
    sim.run_to_completion();

    let stats = um.stats();
    assert_eq!(stats.done, 8, "{stats:?}");
    assert_eq!(pm.replacements(), 1, "false declaration costs a pilot");
    assert!(
        pm.stale_signals() > 0,
        "hour-late heartbeats must be dropped as stale"
    );
    // The falsely-declared pilot stays terminal; its replacement (whose
    // heartbeats start after the window) finishes the run untouched.
    assert!(pm.pilots()[0].state.is_terminal());
    assert_eq!(pm.false_suspicions(), 0, "it never recovered in time");
}
