//! Pilot-layer invariants under randomized applications and pilot fleets:
//! conservation, dependency ordering, capacity, and walltime safety,
//! checked through the full PilotManager/UnitManager machinery.

use aimes_cluster::{Cluster, ClusterConfig};
use aimes_pilot::{
    Binding, PilotDescription, PilotManager, UmConfig, UnitManager, UnitScheduler, UnitState,
};
use aimes_saga::Session;
use aimes_sim::SimRng;
use aimes_sim::{SimDuration, Simulation, Tracer};
use aimes_skeleton::config::TaskDurationConfig;
use aimes_skeleton::{FileSizeSpec, SkeletonApp, SkeletonConfig, StageConfig, TaskMapping};
use aimes_workload::Distribution;
use proptest::prelude::*;
use std::rc::Rc;

/// A random multistage application: widths per stage, all-to-all wiring.
fn random_app(widths: &[u8], seed: u64) -> SkeletonApp {
    let stages: Vec<StageConfig> = widths
        .iter()
        .enumerate()
        .map(|(i, w)| StageConfig {
            name: format!("s{i}"),
            task_count: u32::from(*w) + 1,
            cores_per_task: 1,
            duration: TaskDurationConfig::Dist {
                dist: Distribution::Uniform {
                    lo: 30.0,
                    hi: 300.0,
                },
            },
            input_size_mb: FileSizeSpec::constant(0.5),
            output_size_mb: FileSizeSpec::constant(0.1),
            mapping: if i == 0 {
                TaskMapping::External
            } else {
                TaskMapping::AllToAll
            },
        })
        .collect();
    let cfg = SkeletonConfig {
        name: "prop-app".into(),
        stages,
        iteration: None,
    };
    SkeletonApp::generate(&cfg, &mut SimRng::new(seed)).expect("valid app")
}

fn run_fleet(
    app: &SkeletonApp,
    pilot_cores: &[u8],
    scheduler: UnitScheduler,
    seed: u64,
) -> (UnitManager, PilotManager, Simulation) {
    let mut sim = Simulation::with_tracer(seed, Tracer::disabled());
    let mut session = Session::new();
    session.add_resource(&sim, Cluster::new(ClusterConfig::test("r", 4096)));
    let pm = PilotManager::new(Rc::new(session));
    pm.set_bootstrap_delay(SimDuration::from_secs(5.0));
    let binding = if scheduler == UnitScheduler::Direct {
        Binding::Early
    } else {
        Binding::Late
    };
    let um = UnitManager::new(pm.clone(), UmConfig::new(binding, scheduler));
    let descs: Vec<PilotDescription> = pilot_cores
        .iter()
        .map(|c| PilotDescription::new("r", u32::from(*c) + 1, SimDuration::from_hours(48.0)))
        .collect();
    pm.submit(&mut sim, descs);
    um.submit_units(&mut sim, app.tasks());
    let pm2 = pm.clone();
    um.on_all_done(move |sim| pm2.cancel_all(sim));
    sim.set_event_budget(3_000_000);
    sim.run_to_completion();
    (um, pm, sim)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Conservation: with ample walltime every unit completes exactly once,
    /// no restarts, under every scheduler.
    #[test]
    fn every_unit_completes_exactly_once(
        widths in proptest::collection::vec(0u8..12, 1..4),
        pilots in proptest::collection::vec(3u8..32, 1..4),
        sched_pick in 0u8..3,
        seed in 0u64..1000,
    ) {
        let scheduler = match sched_pick {
            0 => UnitScheduler::Direct,
            1 => UnitScheduler::RoundRobin,
            _ => UnitScheduler::Backfill,
        };
        let app = random_app(&widths, seed);
        let (um, _pm, _sim) = run_fleet(&app, &pilots, scheduler, seed);
        let stats = um.stats();
        prop_assert_eq!(stats.done, app.tasks().len(), "{:?}", stats);
        prop_assert_eq!(stats.failed, 0);
        prop_assert_eq!(stats.restarts, 0);
        for u in um.units() {
            prop_assert_eq!(u.state, UnitState::Done);
            prop_assert_eq!(u.attempts, 1);
        }
    }

    /// Dependency ordering: no unit stages in before all its dependencies
    /// are done, regardless of scheduler and fleet shape.
    #[test]
    fn dependencies_always_respected(
        widths in proptest::collection::vec(0u8..10, 2..4),
        pilots in proptest::collection::vec(3u8..16, 1..3),
        seed in 0u64..1000,
    ) {
        let app = random_app(&widths, seed);
        let (um, _pm, _sim) = run_fleet(&app, &pilots, UnitScheduler::Backfill, seed);
        let units = um.units();
        for u in &units {
            let staged = u.last_time_of(UnitState::StagingInput).expect("ran");
            for dep in &u.task.dependencies {
                let dep_done = units[dep.0 as usize]
                    .last_time_of(UnitState::Done)
                    .expect("dep ran");
                prop_assert!(
                    staged >= dep_done,
                    "{} staged at {:?} before dep {} done at {:?}",
                    u.id, staged, dep, dep_done
                );
            }
        }
    }

    /// Capacity: reconstruct per-pilot concurrent usage from unit
    /// timestamps; it never exceeds the pilot's cores. (Units occupy a
    /// core from StagingInput to StagingOutput.)
    #[test]
    fn pilots_never_oversubscribed(
        widths in proptest::collection::vec(0u8..10, 1..3),
        pilots in proptest::collection::vec(3u8..12, 1..3),
        seed in 0u64..1000,
    ) {
        let app = random_app(&widths, seed);
        let (um, pm, _sim) = run_fleet(&app, &pilots, UnitScheduler::RoundRobin, seed);
        for pilot in pm.pilots() {
            let cap = i64::from(pilot.description.cores);
            let mut events: Vec<(f64, i64)> = Vec::new();
            for u in um.units() {
                if u.pilot == Some(pilot.id) {
                    let start = u.last_time_of(UnitState::StagingInput);
                    let end = u.last_time_of(UnitState::StagingOutput);
                    if let (Some(s), Some(e)) = (start, end) {
                        if e > s {
                            events.push((s.as_secs(), 1));
                            events.push((e.as_secs(), -1));
                        }
                    }
                }
            }
            events.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap().then(a.1.cmp(&b.1)));
            let mut used = 0i64;
            for (t, d) in events {
                used += d;
                prop_assert!(used <= cap, "pilot {} over capacity at t={t}", pilot.id);
            }
        }
    }
}

#[test]
fn backfill_full_paper_shape_smoke() {
    // One deterministic end-to-end check kept out of proptest for clear
    // failure output: the canonical 3-pilot late-binding configuration.
    let app = random_app(&[9, 4, 1], 7);
    let (um, pm, sim) = run_fleet(&app, &[5, 5, 5], UnitScheduler::Backfill, 7);
    assert!(um.stats().finished());
    assert_eq!(um.stats().done, app.tasks().len());
    for p in pm.pilots() {
        assert!(p.state.is_terminal());
    }
    assert!(sim.now().as_secs() > 0.0);
}
