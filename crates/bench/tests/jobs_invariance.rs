//! The experiments binary's sweeps must be worker-count invariant end to
//! end: same command at `--jobs 1` and `--jobs 4` ⇒ byte-identical stdout
//! (tables + JSON blocks) and stderr (failure lines), and — when a
//! campaign manifest is requested — a byte-identical `campaign.jsonl`.
//! This drives the real CLI, so it covers flag parsing, pool
//! configuration, the fanned-out run loop, the order-sensitive
//! aggregation/printing path, and the manifest canonicalization.

use std::process::Command;

fn run_sweep(command: &str, jobs: &str) -> (String, String) {
    run_sweep_with(command, jobs, &[])
}

fn run_sweep_with(command: &str, jobs: &str, extra: &[&str]) -> (String, String) {
    let mut args = vec![
        command, "--quick", "--reps", "2", "--seed", "42", "--jobs", jobs,
    ];
    args.extend_from_slice(extra);
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args(&args)
        .output()
        .expect("experiments binary runs");
    assert!(
        out.status.success(),
        "{command} --jobs {jobs} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
    )
}

/// Progress is opt-in: at defaults, sweep stderr must carry no live
/// status line (no carriage returns, no `[campaign]` marker) — that is
/// what keeps the stderr byte-compare gates meaningful.
fn assert_no_progress_output(command: &str, stderr: &str) {
    assert!(
        !stderr.contains('\r') && !stderr.contains("[campaign]"),
        "{command}: progress output leaked into default stderr: {stderr:?}"
    );
}

#[test]
fn ablation_detection_output_is_byte_identical_across_jobs() {
    let (out1, err1) = run_sweep("ablation-detection", "1");
    let (out4, err4) = run_sweep("ablation-detection", "4");
    assert!(out1.contains("| Detector"), "sanity: table rendered");
    assert_eq!(out1, out4, "stdout diverged between --jobs 1 and 4");
    assert_eq!(err1, err4, "stderr diverged between --jobs 1 and 4");
    assert_no_progress_output("ablation-detection", &err1);
}

#[test]
fn ablation_cascade_output_is_byte_identical_across_jobs() {
    let (out1, err1) = run_sweep("ablation-cascade", "1");
    let (out4, err4) = run_sweep("ablation-cascade", "4");
    assert!(out1.contains("### JSON"), "sanity: JSON block rendered");
    assert_eq!(out1, out4, "stdout diverged between --jobs 1 and 4");
    assert_eq!(err1, err4, "stderr diverged between --jobs 1 and 4");
    assert_no_progress_output("ablation-cascade", &err1);
}

#[test]
fn campaign_manifest_is_byte_identical_across_jobs() {
    let dir = std::env::temp_dir().join(format!("aimes-jobs-invariance-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("create temp dir");
    let path1 = dir.join("campaign-j1.jsonl");
    let path4 = dir.join("campaign-j4.jsonl");

    run_sweep_with(
        "ablation-detection",
        "1",
        &["--campaign-out", path1.to_str().unwrap()],
    );
    run_sweep_with(
        "ablation-detection",
        "4",
        &["--campaign-out", path4.to_str().unwrap()],
    );

    let m1 = std::fs::read(&path1).expect("manifest at --jobs 1");
    let m4 = std::fs::read(&path4).expect("manifest at --jobs 4");
    assert!(!m1.is_empty(), "manifest not empty");
    assert_eq!(
        m1, m4,
        "campaign.jsonl diverged between --jobs 1 and 4 — canonicalization \
         or a volatile default field is broken"
    );

    // The canonical manifest parses, validates, and covers every job.
    let text = String::from_utf8(m1).expect("utf8 manifest");
    let manifest = aimes::campaign::read_manifest(&text).expect("manifest parses");
    manifest.validate().expect("manifest validates");
    assert_eq!(manifest.meta.command, "ablation-detection");
    assert_eq!(manifest.runs.len() as u64, manifest.meta.total_jobs);
    // Defaults are the deterministic mode: no timing, no pool record.
    assert!(manifest.runs.iter().all(|r| r.timing.is_none()));
    assert!(manifest.pool.is_none());

    std::fs::remove_file(&path1).ok();
    std::fs::remove_file(&path4).ok();
}
