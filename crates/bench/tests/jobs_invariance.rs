//! The experiments binary's sweeps must be worker-count invariant end to
//! end: same command at `--jobs 1` and `--jobs 4` ⇒ byte-identical stdout
//! (tables + JSON blocks) and stderr (failure lines). This drives the
//! real CLI, so it covers flag parsing, pool configuration, the fanned-
//! out run loop, and the order-sensitive aggregation/printing path.

use std::process::Command;

fn run_sweep(command: &str, jobs: &str) -> (String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_experiments"))
        .args([
            command, "--quick", "--reps", "2", "--seed", "42", "--jobs", jobs,
        ])
        .output()
        .expect("experiments binary runs");
    assert!(
        out.status.success(),
        "{command} --jobs {jobs} failed: {}",
        String::from_utf8_lossy(&out.stderr)
    );
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
    )
}

#[test]
fn ablation_detection_output_is_byte_identical_across_jobs() {
    let (out1, err1) = run_sweep("ablation-detection", "1");
    let (out4, err4) = run_sweep("ablation-detection", "4");
    assert!(out1.contains("| Detector"), "sanity: table rendered");
    assert_eq!(out1, out4, "stdout diverged between --jobs 1 and 4");
    assert_eq!(err1, err4, "stderr diverged between --jobs 1 and 4");
}

#[test]
fn ablation_cascade_output_is_byte_identical_across_jobs() {
    let (out1, err1) = run_sweep("ablation-cascade", "1");
    let (out4, err4) = run_sweep("ablation-cascade", "4");
    assert!(out1.contains("### JSON"), "sanity: JSON block rendered");
    assert_eq!(out1, out4, "stdout diverged between --jobs 1 and 4");
    assert_eq!(err1, err4, "stderr diverged between --jobs 1 and 4");
}
