//! The benchmark trajectory: fixed-seed performance campaigns over the
//! simulation substrate, emitted as a machine-readable report.
//!
//! The paper's evaluation rests on "more than 20,000 runs" of the virtual
//! laboratory; what bounds our repetition counts is the substrate's raw
//! speed. This binary pins that speed down so every PR has a baseline to
//! beat:
//!
//! ```text
//! bench-report [--quick] [--seed S] [--jobs N] [--out BENCH_sim.json]
//!              [--check BENCH_baseline.json] [--tolerance 0.25]
//!              [--emit-metrics DIR]
//!              [--campaign-out PATH] [--campaign-timing] [--progress]
//!              [--profile-out PATH]
//! ```
//!
//! Campaigns (all deterministic given `--seed`):
//!
//! * `engine_heartbeat` — event-engine throughput under the detector's
//!   heartbeat pattern: every beat schedules the next and replaces a
//!   far-future timeout (schedule + cancel), so the lazily-cancelled set
//!   exercises the queue's compaction path.
//! * `cluster_saturation` — an oversubscribed 2048-core machine with a
//!   deep initial backlog, run for half a simulated day while a
//!   bundle-style client issues periodic `estimate_wait` probes; this is
//!   the hot path every experiment spends its time in.
//! * `e2e_exp1` / `e2e_exp4` — whole middleware runs of the paper's
//!   experiments 1 (early binding) and 4 (late binding, 3 pilots) at
//!   paper sizes, sequentially, measured as runs/sec.
//! * `campaign_throughput` — hundreds of fixed-seed experiment-1 runs
//!   fanned across the worker pool via `run_experiment`; its
//!   `runs_per_sec` is the campaign engine's real fan-out throughput and
//!   scales with `--jobs` / host cores (the e2e campaigns deliberately
//!   don't).
//!
//! `--check` compares throughput metrics against a committed baseline and
//! exits non-zero on a regression beyond the tolerance (CI perf-smoke).
//! `--campaign-out PATH` writes a `campaign.jsonl` manifest for the
//! `campaign_throughput` fan-out (one record per run, canonical job
//! order); `--campaign-timing` adds the volatile wall-clock fields and the
//! pool record; `--progress` draws the live status line on stderr.
//! `--emit-metrics DIR` additionally performs one telemetry-instrumented
//! experiment-1 run and writes `trace.json` (Perfetto-loadable),
//! `metrics.json`, and `metrics.csv` into DIR (CI telemetry-smoke).
//! `--profile-out PATH` attaches a per-run engine profiler to the
//! `campaign_throughput` fan-out and writes the merged `aimes-profile-v1`
//! document; host timing and allocator sections appear only with
//! `--campaign-timing` (without it the document is worker-count
//! invariant). Every report row also carries `peak_rss_bytes` (VmHWM
//! after the campaign) and `allocs_per_event` from the binary's counting
//! global allocator.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Instant;

use aimes::experiment::{run_experiment_with, CampaignHooks};
use aimes::middleware::{run_application, RunOptions};
use aimes::paper;
use aimes::profile::{AllocSection, ProfileAccumulator, ProfileDoc, TimingInputs};
use aimes_bench::alloc::{self as heap, CountingAlloc};
use aimes_cluster::{Cluster, ClusterConfig};
use aimes_sim::{EventId, SimDuration, SimTime, Simulation, Tracer};
use aimes_workload::WorkloadConfig;
use serde::{Deserialize, Serialize};

/// Heap accounting for the perf trajectory: every allocation in this
/// binary is counted (relaxed atomics, peak via atomic max).
#[global_allocator]
static GLOBAL_ALLOC: CountingAlloc = CountingAlloc;

/// One campaign's measurements. Throughput fields are zero when the
/// campaign has no meaningful value for them.
#[derive(Clone, Debug, Serialize, Deserialize)]
struct CampaignStat {
    label: String,
    events: u64,
    runs: u64,
    wall_secs: f64,
    events_per_sec: f64,
    runs_per_sec: f64,
    /// Process peak RSS (`VmHWM`) sampled after the campaign — monotone
    /// across campaigns, so this is "peak so far", not a per-campaign
    /// footprint.
    peak_rss_bytes: u64,
    /// Allocator calls per engine event during the campaign (0 for
    /// run-based campaigns, which do not count events).
    allocs_per_event: f64,
}

#[derive(Clone, Debug, Serialize, Deserialize)]
struct BenchReport {
    schema: String,
    seed: u64,
    quick: bool,
    campaigns: Vec<CampaignStat>,
    peak_rss_bytes: u64,
}

struct Options {
    quick: bool,
    seed: u64,
    out: String,
    check: Option<String>,
    tolerance: f64,
    only: Option<String>,
    emit_metrics: Option<std::path::PathBuf>,
    /// Worker count for pool-backed campaigns (default: all cores).
    jobs: Option<usize>,
    /// Campaign manifest path for `campaign_throughput` (the one
    /// pool-backed campaign here).
    campaign_out: Option<std::path::PathBuf>,
    /// Record volatile wall-clock fields + pool record in the manifest.
    campaign_timing: bool,
    /// Live status line on stderr for `campaign_throughput`.
    progress: bool,
    /// Merged `aimes-profile-v1` document for `campaign_throughput`'s
    /// per-run engine profiles (timing gated by `--campaign-timing`).
    profile_out: Option<std::path::PathBuf>,
}

fn parse_args() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        quick: false,
        seed: 20160523,
        out: "BENCH_sim.json".to_string(),
        check: None,
        tolerance: 0.25,
        only: None,
        emit_metrics: None,
        jobs: None,
        campaign_out: None,
        campaign_timing: false,
        progress: false,
        profile_out: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--quick" => opts.quick = true,
            "--seed" => {
                i += 1;
                opts.seed = args[i].parse().expect("--seed takes an integer");
            }
            "--out" => {
                i += 1;
                opts.out = args[i].clone();
            }
            "--check" => {
                i += 1;
                opts.check = Some(args[i].clone());
            }
            "--tolerance" => {
                i += 1;
                opts.tolerance = args[i].parse().expect("--tolerance takes a float");
            }
            "--only" => {
                i += 1;
                opts.only = Some(args[i].clone());
            }
            "--emit-metrics" => {
                i += 1;
                opts.emit_metrics = Some(args[i].clone().into());
            }
            "--jobs" => {
                i += 1;
                opts.jobs = Some(args[i].parse().expect("--jobs takes an integer"));
            }
            "--campaign-out" => {
                i += 1;
                opts.campaign_out = Some(args[i].clone().into());
            }
            "--campaign-timing" => opts.campaign_timing = true,
            "--progress" => opts.progress = true,
            "--profile-out" => {
                i += 1;
                opts.profile_out = Some(args[i].clone().into());
            }
            other => {
                eprintln!("unknown argument `{other}`");
                eprintln!(
                    "usage: bench-report [--quick] [--seed S] [--jobs N] [--out FILE] \
                     [--check BASELINE] [--tolerance F] [--emit-metrics DIR] \
                     [--campaign-out PATH] [--campaign-timing] [--progress] \
                     [--profile-out PATH]"
                );
                std::process::exit(2);
            }
        }
        i += 1;
    }
    opts
}

/// Peak resident set size of this process, in bytes (Linux `VmHWM`;
/// 0 where unavailable).
fn peak_rss_bytes() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest
                .trim()
                .trim_end_matches("kB")
                .trim()
                .parse()
                .unwrap_or(0);
            return kb * 1024;
        }
    }
    0
}

/// One heartbeat: fire, replace the chain's far-future timeout (the
/// schedule + cancel churn PR 2's detector produces all campaign), and
/// schedule the next beat.
fn beat(
    sim: &mut Simulation,
    timeouts: &Rc<RefCell<Vec<Option<EventId>>>>,
    chain: usize,
    remaining: u32,
    period: f64,
) {
    if let Some(ev) = timeouts.borrow_mut()[chain].take() {
        sim.cancel(ev);
    }
    if remaining == 0 {
        return;
    }
    let ev = sim.schedule_in(SimDuration::from_secs(period * 1000.0), |_| {});
    timeouts.borrow_mut()[chain] = Some(ev);
    let handles = Rc::clone(timeouts);
    sim.schedule_in(SimDuration::from_secs(period), move |sim| {
        beat(sim, &handles, chain, remaining - 1, period)
    });
}

fn engine_heartbeat(seed: u64, quick: bool) -> CampaignStat {
    let chains = 64usize;
    let beats: u32 = if quick { 2_000 } else { 20_000 };
    let mut sim = Simulation::with_tracer(seed, Tracer::disabled());
    let timeouts: Rc<RefCell<Vec<Option<EventId>>>> = Rc::new(RefCell::new(vec![None; chains]));
    for chain in 0..chains {
        // Slightly detuned periods so beats interleave instead of piling
        // on one instant.
        let period = 1.0 + chain as f64 * 0.013;
        beat(&mut sim, &timeouts, chain, beats, period);
    }
    let start = Instant::now();
    sim.run_to_completion();
    let wall = start.elapsed().as_secs_f64();
    let events = sim.events_processed();
    CampaignStat {
        label: "engine_heartbeat".to_string(),
        events,
        runs: 0,
        wall_secs: wall,
        events_per_sec: events as f64 / wall,
        runs_per_sec: 0.0,
        peak_rss_bytes: 0,
        allocs_per_event: 0.0,
    }
}

/// The shapes a bundle-guided planner probes: pilot candidates of varied
/// width and walltime, several evaluated at each decision instant.
const PROBE_SHAPES: [(u32, f64); 8] = [
    (16, 0.5),
    (32, 1.0),
    (64, 1.0),
    (96, 2.0),
    (128, 2.0),
    (256, 4.0),
    (512, 8.0),
    (1024, 12.0),
];

fn schedule_probe_tick(
    sim: &mut Simulation,
    cluster: &Cluster,
    horizon: SimTime,
    probes: &Rc<RefCell<u64>>,
) {
    let at = sim.now() + SimDuration::from_secs(600.0);
    if at > horizon {
        return;
    }
    let c = cluster.clone();
    let p = Rc::clone(probes);
    sim.schedule_at(at, move |sim| {
        let now = sim.now();
        for &(cores, wall_hours) in &PROBE_SHAPES {
            // Planners evaluate each candidate more than once per decision
            // (ranking, then sizing); repeat queries hit the memo.
            for _ in 0..2 {
                let _ = c.estimate_wait(now, cores, SimDuration::from_hours(wall_hours));
                *p.borrow_mut() += 1;
            }
        }
        schedule_probe_tick(sim, &c, horizon, &p);
    });
}

fn cluster_saturation(seed: u64, quick: bool) -> CampaignStat {
    let horizon_hours = if quick { 3.0 } else { 12.0 };
    let horizon = SimTime::from_secs(horizon_hours * 3600.0);
    let mut cfg = ClusterConfig::test("saturation", 2048);
    // A throughput-oriented machine: many small, short jobs at full
    // subscription, so the queue stays persistently deep and every
    // dispatch pass and wait estimate replays a long queue — the hot
    // path this campaign exists to measure.
    let mut workload = WorkloadConfig::production_like();
    workload.target_utilization = 1.05;
    workload.size_dist = aimes_workload::Distribution::PowerOfTwo {
        lo_exp: 0,
        hi_exp: 5,
    };
    workload.runtime_dist = aimes_workload::Distribution::LogNormal {
        // median e^6.4 ≈ 600 s ≈ 10 min; sigma 1.0 keeps a visible tail.
        mu: 6.4,
        sigma: 1.0,
    };
    cfg.workload = Some(workload);
    cfg.initial_backlog_factor = 2.0;
    cfg.background_horizon = SimDuration::from_secs(horizon_hours * 3600.0);
    let mut sim = Simulation::with_tracer(seed, Tracer::disabled());
    let cluster = Cluster::new(cfg);
    cluster.install(&mut sim);
    let probes = Rc::new(RefCell::new(0u64));
    schedule_probe_tick(&mut sim, &cluster, horizon, &probes);
    let start = Instant::now();
    sim.run_until(horizon);
    let wall = start.elapsed().as_secs_f64();
    let events = sim.events_processed();
    CampaignStat {
        label: "cluster_saturation".to_string(),
        events,
        runs: 0,
        wall_secs: wall,
        events_per_sec: events as f64 / wall,
        runs_per_sec: 0.0,
        peak_rss_bytes: 0,
        allocs_per_event: 0.0,
    }
}

/// Sequential end-to-end runs of one paper experiment. Deliberately NOT
/// on the worker pool: this campaign measures per-run middleware speed,
/// so its wall time per run must not depend on host core count or
/// `--jobs` — fan-out throughput is `campaign_throughput`'s job.
fn e2e_experiment(id: u32, seed: u64, quick: bool) -> CampaignStat {
    let sizes: Vec<u32> = if quick {
        vec![64]
    } else {
        vec![256, 1024, 2048]
    };
    let reps = if quick { 2 } else { 4 };
    let cfg = paper::experiment(id, reps, seed, Some(sizes));
    let start = Instant::now();
    let mut runs = 0u64;
    for n in &cfg.task_counts {
        for rep in 0..cfg.repetitions {
            // The experiment runner's own per-run derivation (shared
            // helper, pinned by test in aimes::experiment).
            let seed = cfg.run_seed(*n, rep);
            let submit_at = cfg.submit_instant(seed);
            let r = run_application(
                &cfg.resources,
                &cfg.skeleton(*n),
                &cfg.strategy,
                &RunOptions {
                    seed,
                    submit_at,
                    ..Default::default()
                },
            );
            r.unwrap_or_else(|e| panic!("{} run failed: {e}", cfg.id));
            runs += 1;
        }
    }
    let wall = start.elapsed().as_secs_f64();
    CampaignStat {
        label: format!("e2e_exp{id}"),
        events: 0,
        runs,
        wall_secs: wall,
        events_per_sec: 0.0,
        runs_per_sec: runs as f64 / wall,
        peak_rss_bytes: 0,
        allocs_per_event: 0.0,
    }
}

/// Hundreds of small fixed-seed experiment-1 runs pushed through
/// `run_experiment` — i.e. through the real worker pool — measured as
/// runs/sec. This is the campaign engine's fan-out throughput: it scales
/// with `--jobs` / host cores, and the CI perf gate asserts that scaling
/// (jobs=4 must beat jobs=1 by ≥1.8× on a 4-core runner).
fn campaign_throughput(seed: u64, quick: bool, opts: &Options) -> CampaignStat {
    let reps = if quick { 96 } else { 384 };
    let mut cfg = paper::experiment(1, reps, seed, Some(vec![64]));
    cfg.id = "campaign-throughput".into();
    let total_jobs = (cfg.task_counts.len() * cfg.repetitions) as u64;
    let recorder = opts.campaign_out.as_ref().map(|path| {
        let meta = aimes::CampaignMeta::new("campaign-throughput", seed, total_jobs);
        // Fresh pool accounting so a timing-mode pool record covers
        // exactly this campaign's fan-out.
        rayon::reset_pool_stats();
        aimes::CampaignRecorder::create(path, &meta, opts.campaign_timing).unwrap_or_else(|e| {
            eprintln!("cannot create campaign manifest {}: {e}", path.display());
            std::process::exit(2);
        })
    });
    let sender = recorder.as_ref().map(|r| r.sender());
    let progress = opts.progress.then(|| aimes::Progress::new(total_jobs));
    let profile = opts.profile_out.as_ref().map(|_| ProfileAccumulator::new());
    let hooks = CampaignHooks {
        recorder: sender.as_ref(),
        progress: progress.as_ref(),
        profile: profile.as_ref(),
    };
    let alloc_before = heap::snapshot();
    let start = Instant::now();
    let result = run_experiment_with(&cfg, hooks);
    let wall = start.elapsed().as_secs_f64();
    if let Some(progress) = &progress {
        progress.finish();
    }
    drop(sender);
    if let Some(recorder) = recorder {
        let pool = opts
            .campaign_timing
            .then(|| aimes::campaign::PoolRecord::from_stats(&rayon::pool_stats()));
        if let Err(e) = recorder.close(pool.as_ref()) {
            eprintln!("cannot finalize campaign manifest: {e}");
            std::process::exit(2);
        }
    }
    let point = &result.points[0];
    assert!(
        point.errors.is_empty(),
        "campaign runs must succeed: {:?}",
        point.errors.first()
    );
    let runs = point.runs.len() as u64;
    if let (Some(path), Some(acc)) = (&opts.profile_out, &profile) {
        let merged = acc.merged();
        // Timing is volatile (depends on host + worker count), so it is
        // gated exactly like the campaign manifest's wall-clock fields.
        let timing = opts.campaign_timing.then(|| {
            let delta = heap::snapshot().since(&alloc_before);
            let events = merged.engine.events_processed;
            TimingInputs {
                total_wall_secs: wall,
                sequential: false,
                run_walls: Vec::new(),
                alloc: Some(AllocSection {
                    allocs: delta.allocs,
                    bytes_allocated: delta.bytes_allocated,
                    peak_bytes: delta.peak_bytes,
                    allocs_per_event: if events > 0 {
                        delta.allocs as f64 / events as f64
                    } else {
                        0.0
                    },
                }),
            }
        });
        let doc = ProfileDoc::build("campaign_throughput", seed, acc.runs(), &merged, timing);
        doc.validate().unwrap_or_else(|e| {
            eprintln!("internal error: produced invalid profile doc: {e}");
            std::process::exit(2);
        });
        let json = serde_json::to_string_pretty(&doc).expect("profile doc serializes");
        std::fs::write(path, format!("{json}\n")).unwrap_or_else(|e| {
            eprintln!("cannot write profile doc {}: {e}", path.display());
            std::process::exit(2);
        });
        eprintln!("wrote profile doc {}", path.display());
    }
    CampaignStat {
        label: "campaign_throughput".to_string(),
        events: 0,
        runs,
        wall_secs: wall,
        events_per_sec: 0.0,
        runs_per_sec: runs as f64 / wall,
        peak_rss_bytes: 0,
        allocs_per_event: 0.0,
    }
}

/// One telemetry-instrumented experiment-1 run at the bench seed,
/// dumping the Chrome trace, metrics summary JSON, and gauge-timeline
/// CSV — the observability artifacts CI uploads next to the perf report.
fn emit_metrics(dir: &std::path::Path, seed: u64, quick: bool) {
    use aimes_sim::Telemetry;
    use std::io::Write as _;
    let cfg = paper::experiment(1, 1, seed, Some(vec![if quick { 64 } else { 256 }]));
    let n = cfg.task_counts[0];
    let run_seed = cfg.run_seed(n, 0);
    let submit_at = cfg.submit_instant(run_seed);
    let telemetry = Telemetry::new();
    let result = run_application(
        &cfg.resources,
        &cfg.skeleton(n),
        &cfg.strategy,
        &RunOptions {
            seed: run_seed,
            submit_at,
            telemetry: Some(telemetry.clone()),
            ..Default::default()
        },
    )
    .expect("instrumented run completes");
    std::fs::create_dir_all(dir).expect("create --emit-metrics dir");
    let file = |name: &str| {
        std::io::BufWriter::new(std::fs::File::create(dir.join(name)).expect("create metrics file"))
    };
    let mut trace = file("trace.json");
    telemetry
        .write_chrome_trace(&mut trace)
        .expect("write trace.json");
    trace.flush().expect("flush trace.json");
    let mut csv = file("metrics.csv");
    telemetry
        .write_metrics_csv(&mut csv)
        .expect("write metrics.csv");
    csv.flush().expect("flush metrics.csv");
    let summary = result.metrics.expect("telemetry was attached");
    let json = serde_json::to_string_pretty(&summary).expect("summary serializes");
    std::fs::write(dir.join("metrics.json"), format!("{json}\n")).expect("write metrics.json");
    eprintln!("wrote telemetry artifacts to {}", dir.display());
}

/// Compare `new` against `baseline`: a throughput metric more than
/// `tolerance` below the baseline is a regression.
fn check_regressions(new: &BenchReport, baseline: &BenchReport, tolerance: f64) -> Vec<String> {
    let mut failures = Vec::new();
    for n in &new.campaigns {
        let Some(b) = baseline.campaigns.iter().find(|c| c.label == n.label) else {
            continue;
        };
        let mut check = |metric: &str, new_v: f64, base_v: f64| {
            if base_v > 0.0 && new_v < base_v * (1.0 - tolerance) {
                failures.push(format!(
                    "{}: {metric} regressed {:.3} -> {:.3} ({:+.1}%)",
                    n.label,
                    base_v,
                    new_v,
                    (new_v / base_v - 1.0) * 100.0
                ));
            }
        };
        check("events_per_sec", n.events_per_sec, b.events_per_sec);
        check("runs_per_sec", n.runs_per_sec, b.runs_per_sec);
    }
    failures
}

fn main() {
    let opts = parse_args();
    if let Some(jobs) = opts.jobs {
        rayon::ThreadPoolBuilder::new()
            .num_threads(jobs)
            .build_global()
            .expect("configure worker pool");
    }
    let mut campaigns = Vec::new();
    for (label, run) in [
        (
            "engine_heartbeat",
            Box::new(engine_heartbeat) as Box<dyn Fn(u64, bool) -> CampaignStat + '_>,
        ),
        ("cluster_saturation", Box::new(cluster_saturation)),
        ("e2e_exp1", Box::new(|s, q| e2e_experiment(1, s, q))),
        ("e2e_exp4", Box::new(|s, q| e2e_experiment(4, s, q))),
        (
            "campaign_throughput",
            Box::new(|s, q| campaign_throughput(s, q, &opts)),
        ),
    ] {
        if opts.only.as_deref().is_some_and(|o| o != label) {
            continue;
        }
        eprintln!("running campaign {label} ...");
        let alloc_before = heap::snapshot();
        let mut stat = run(opts.seed, opts.quick);
        let delta = heap::snapshot().since(&alloc_before);
        stat.peak_rss_bytes = peak_rss_bytes();
        stat.allocs_per_event = if stat.events > 0 {
            delta.allocs as f64 / stat.events as f64
        } else {
            0.0
        };
        eprintln!(
            "  {label}: {:.2}s wall, {:.0} events/s, {:.3} runs/s, {:.1} allocs/event",
            stat.wall_secs, stat.events_per_sec, stat.runs_per_sec, stat.allocs_per_event
        );
        campaigns.push(stat);
    }
    let report = BenchReport {
        schema: "aimes-bench-v1".to_string(),
        seed: opts.seed,
        quick: opts.quick,
        campaigns,
        peak_rss_bytes: peak_rss_bytes(),
    };
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write(&opts.out, format!("{json}\n")).expect("report written");
    eprintln!("wrote {}", opts.out);

    if let Some(dir) = &opts.emit_metrics {
        emit_metrics(dir, opts.seed, opts.quick);
    }

    if let Some(path) = &opts.check {
        let text = std::fs::read_to_string(path)
            .unwrap_or_else(|e| panic!("cannot read baseline {path}: {e}"));
        let baseline: BenchReport =
            serde_json::from_str(&text).unwrap_or_else(|e| panic!("bad baseline {path}: {e}"));
        let failures = check_regressions(&report, &baseline, opts.tolerance);
        if failures.is_empty() {
            eprintln!(
                "no regression beyond {:.0}% against {path}",
                opts.tolerance * 100.0
            );
        } else {
            for f in &failures {
                eprintln!("PERF REGRESSION: {f}");
            }
            std::process::exit(1);
        }
    }
}
