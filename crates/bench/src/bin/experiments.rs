//! Regenerate the paper's tables and figures.
//!
//! Usage:
//!
//! ```text
//! experiments -- <command> [--reps N] [--seed S] [--quick] [--jobs N]
//!
//! commands:
//!   table1              print the experiment-design matrix (Table I)
//!   fig2                TTC comparison of experiments 1-4 (Figure 2)
//!   fig3                TTC decomposition per experiment (Figure 3 a-d)
//!   fig4                TTC error bars, exp 1 vs exp 3 (Figure 4 a-b)
//!   ablation-pilots     late-binding pilot-count sweep (1..5)
//!   ablation-sched      backfill vs round-robin under late binding
//!   ablation-select     bundle-ranked vs random resource selection
//!   ablation-data       data-heavy regime: input size sweep until Ts dominates
//!   ablation-crossover  long tasks: where early binding becomes competitive
//!   ablation-throughput tasks/hour under each strategy
//!   ablation-hetero     heterogeneous task-duration mixes
//!   ablation-faults     failure-rate sweep: self-healing cost & payoff
//!   ablation-detection  failure-detector tuning: Td vs oracle recovery
//!   ablation-info       degraded-information arms: oracle / streaming /
//!                       degraded / blackout, with fallback-ladder counters
//!   ablation-cascade    correlated-failure domains: reactive vs proactive
//!                       evacuation vs evacuation + checkpointed salvage
//!   telemetry           one instrumented experiment-1 run; see --emit-metrics
//!   profile             engine self-profile: sequential experiment-1 runs
//!                       under one shared profiler; prints the self-time
//!                       table and writes an aimes-profile-v1 document
//!   journal             run a named scenario, write its journal JSONL (--scenario, --out)
//!   analyze             post-mortem analysis of a journal: timelines, TTC closure,
//!                       critical path, stragglers; exits nonzero on closure failure
//!   analytics-diff      compare two analyses (or journals) component-by-component;
//!                       exits nonzero past --threshold
//!   campaign-report     cross-run analysis of a --campaign-out manifest:
//!                       per-arm TTC percentiles, Tukey-fence straggler runs,
//!                       failure taxonomy table, pool utilization
//!   all                 everything above
//! ```
//!
//! `--quick` restricts sizes to {8, 64, 512} and 3 repetitions for a fast
//! shape check. `--fail-on-error` makes `ablation-faults` exit non-zero
//! if any healing arm (oracle or detection) fails a run — the chaos-smoke
//! CI gate. `--jobs N` caps the worker pool the sweeps fan out on
//! (default: all cores; every run owns its seed and results aggregate in
//! job order, so output is byte-identical at any worker count).
//!
//! Campaign observability (the parallel sweeps — faults, detection, info,
//! cascade): `--campaign-out PATH` writes a `campaign.jsonl` manifest with
//! one record per run (arm, rep, seed, outcome, TTC components, recovery
//! counters, error taxonomy), canonicalized to job order on close so it is
//! byte-identical at any `--jobs`. `--campaign-timing` additionally records
//! volatile wall-clock fields (worker index, per-phase wall split, a pool
//! record) — useful, but worker-count dependent. `--progress` draws an
//! opt-in live status line on stderr. `--profile-out PATH` attaches a
//! per-run engine profiler to every run of the sweep and writes the
//! merged `aimes-profile-v1` document — scope counts and engine counters
//! always, host timing and allocator sections only with
//! `--campaign-timing`, so the default document is byte-identical at any
//! `--jobs`.
//!
//! `telemetry` runs experiment 1 once at the given seed with the typed
//! telemetry layer on and prints the metrics summary block.
//! `--emit-metrics <dir>` additionally writes `trace.json` (Chrome
//! trace-event format — load it at <https://ui.perfetto.dev>),
//! `metrics.json` (the summary), and `metrics.csv` (gauge timelines);
//! `--trace-out <path>` streams the full event trace as JSON.

use aimes::experiment::{run_experiment, ExperimentConfig, ExperimentResult};
use aimes::middleware::{run_application, RunOptions};
use aimes::paper;
use aimes::profile::{self, AllocSection, ProfileAccumulator, ProfileDoc, TimingInputs};
use aimes::report;
use aimes::stats::Summary;
use aimes_bench::alloc::{self as heap, CountingAlloc};
use aimes_sim::{EngineStats, Profiler, SimRng, SimTime};
use aimes_skeleton::{bag_of_tasks, paper_task_counts, TaskDurationSpec};
use aimes_strategy::ExecutionStrategy;
use aimes_workload::Distribution;
use rayon::prelude::*;

/// Heap accounting for profile documents: every allocation in this
/// binary is counted (relaxed atomics, peak via atomic max).
#[global_allocator]
static GLOBAL_ALLOC: CountingAlloc = CountingAlloc;

struct Options {
    reps: usize,
    seed: u64,
    quick: bool,
    fail_on_error: bool,
    emit_metrics: Option<std::path::PathBuf>,
    trace_out: Option<std::path::PathBuf>,
    /// Scenario name for `journal` (see `aimes_bench::scenarios::NAMES`).
    scenario: String,
    /// Output path for `journal` / `analyze`.
    out: Option<std::path::PathBuf>,
    /// Closure epsilon for `analyze`.
    epsilon: f64,
    /// Relative regression threshold for `analytics-diff`.
    threshold: f64,
    /// Positional file arguments after the command (journal/analysis
    /// paths for `analyze` and `analytics-diff`).
    files: Vec<std::path::PathBuf>,
    /// Flight-recorder dump directory for the chaos arms (`ablation-info`,
    /// `ablation-faults`): failed runs leave checksummed post-mortem
    /// snapshots here for CI to collect as artifacts.
    dump_dir: Option<std::path::PathBuf>,
    /// Worker-pool size for the parallel sweeps (default: all cores).
    jobs: Option<usize>,
    /// Campaign manifest path (`campaign.jsonl`) for the parallel sweeps
    /// (faults / detection / info / cascade): one record per run,
    /// canonicalized to job order at close.
    campaign_out: Option<std::path::PathBuf>,
    /// Record volatile wall-clock fields (worker index, wall offsets,
    /// phase split, pool record) in the manifest. Off by default — the
    /// default manifest is byte-identical at any worker count.
    campaign_timing: bool,
    /// Live status line on stderr. Off by default so sweep stderr stays
    /// byte-identical across worker counts.
    progress: bool,
    /// `aimes-profile-v1` output path: for the parallel sweeps, the
    /// merged per-run engine profile (host timing gated by
    /// `--campaign-timing`, so the default document is byte-identical at
    /// any `--jobs`); for the `profile` command, where the document goes
    /// instead of stdout.
    profile_out: Option<std::path::PathBuf>,
}

fn parse_args() -> (String, Options) {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut command = String::from("help");
    let mut opts = Options {
        reps: aimes_bench::DEFAULT_REPETITIONS,
        seed: 20160523, // IPDPS 2016 opening day
        quick: false,
        fail_on_error: false,
        emit_metrics: None,
        trace_out: None,
        scenario: "exp1".into(),
        out: None,
        epsilon: aimes_analytics::DEFAULT_EPSILON_SECS,
        threshold: 0.10,
        files: Vec::new(),
        dump_dir: None,
        jobs: None,
        campaign_out: None,
        campaign_timing: false,
        progress: false,
        profile_out: None,
    };
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--reps" => {
                i += 1;
                opts.reps = args[i].parse().expect("--reps takes a number");
            }
            "--seed" => {
                i += 1;
                opts.seed = args[i].parse().expect("--seed takes a number");
            }
            "--quick" => opts.quick = true,
            "--fail-on-error" => opts.fail_on_error = true,
            "--emit-metrics" => {
                i += 1;
                opts.emit_metrics = Some(args[i].clone().into());
            }
            "--trace-out" => {
                i += 1;
                opts.trace_out = Some(args[i].clone().into());
            }
            "--scenario" => {
                i += 1;
                opts.scenario = args[i].clone();
            }
            "--out" => {
                i += 1;
                opts.out = Some(args[i].clone().into());
            }
            "--epsilon" => {
                i += 1;
                opts.epsilon = args[i].parse().expect("--epsilon takes a number");
            }
            "--threshold" => {
                i += 1;
                opts.threshold = args[i].parse().expect("--threshold takes a number");
            }
            "--dump-dir" => {
                i += 1;
                opts.dump_dir = Some(args[i].clone().into());
            }
            "--jobs" => {
                i += 1;
                opts.jobs = Some(args[i].parse().expect("--jobs takes a number"));
            }
            "--campaign-out" => {
                i += 1;
                opts.campaign_out = Some(args[i].clone().into());
            }
            "--campaign-timing" => opts.campaign_timing = true,
            "--progress" => opts.progress = true,
            "--profile-out" => {
                i += 1;
                opts.profile_out = Some(args[i].clone().into());
            }
            c if !c.starts_with("--") => {
                if command == "help" {
                    command = c.to_string();
                } else {
                    opts.files.push(c.into());
                }
            }
            other => panic!("unknown flag {other}"),
        }
        i += 1;
    }
    if opts.quick {
        opts.reps = opts.reps.min(3);
    }
    (command, opts)
}

fn sizes(opts: &Options) -> Option<Vec<u32>> {
    opts.quick.then(aimes_bench::quick_sizes)
}

fn run(cfg: &ExperimentConfig) -> ExperimentResult {
    eprintln!(
        "running {} ({} sizes x {} reps) ...",
        cfg.id,
        cfg.task_counts.len(),
        cfg.repetitions
    );
    let start = std::time::Instant::now();
    let result = run_experiment(cfg);
    eprintln!("  {} done in {:.1}s", cfg.id, start.elapsed().as_secs_f64());
    for p in &result.points {
        if !p.errors.is_empty() {
            eprintln!(
                "  WARNING {}@{}: {}/{} runs failed: {}",
                cfg.id,
                p.n_tasks,
                p.errors.len(),
                p.errors.len() + p.runs.len(),
                p.errors[0]
            );
        }
    }
    result
}

fn table1() {
    println!("## Table I — skeleton applications and execution strategies\n");
    let rows = paper::table1_rows();
    let rows: Vec<Vec<String>> = rows.into_iter().map(|r| r.to_vec()).collect();
    println!(
        "{}",
        report::markdown_table(
            &[
                "Experiment",
                "#Tasks",
                "Task duration",
                "Binding",
                "Scheduler",
                "#Pilots",
                "Pilot size",
                "Pilot walltime"
            ],
            &rows
        )
    );
}

fn experiments_1_to_4(opts: &Options) -> Vec<ExperimentResult> {
    (1..=4)
        .map(|id| run(&paper::experiment(id, opts.reps, opts.seed, sizes(opts))))
        .collect()
}

fn fig2(opts: &Options) {
    let results = experiments_1_to_4(opts);
    println!("## Figure 2 — TTC comparison, experiments 1-4\n");
    let refs: Vec<&ExperimentResult> = results.iter().collect();
    println!("{}", report::fig2_table(&refs));
    println!("```\n{}```\n", report::fig2_chart(&refs));
    println!("### CSV\n```\n{}```", report::csv_export(&refs));
}

fn fig3(opts: &Options) {
    let results = experiments_1_to_4(opts);
    println!("## Figure 3 — TTC decomposition (Tw, Tx, Ts) per experiment\n");
    for (panel, r) in ["(a)", "(b)", "(c)", "(d)"].iter().zip(&results) {
        println!("### {panel} {}", report::fig3_table(r));
    }
}

fn fig4(opts: &Options) {
    let e1 = run(&paper::experiment(1, opts.reps, opts.seed, sizes(opts)));
    let e3 = run(&paper::experiment(3, opts.reps, opts.seed, sizes(opts)));
    println!("## Figure 4 — TTC error bars: early (a) vs late (b)\n");
    println!("### (a) {}", report::fig4_table(&e1));
    println!("### (b) {}", report::fig4_table(&e3));
}

fn ablation_pilots(opts: &Options) {
    println!("## Ablation — late-binding pilot-count sweep\n");
    let sizes = sizes(opts).unwrap_or_else(|| vec![256, 1024]);
    let mut rows = Vec::new();
    for k in 1..=5u32 {
        let r = run(&paper::pilot_count_ablation(
            k,
            opts.reps,
            opts.seed,
            Some(sizes.clone()),
        ));
        for p in &r.points {
            rows.push(vec![
                k.to_string(),
                p.n_tasks.to_string(),
                format!("{:.0}", p.ttc.mean),
                format!("{:.0}", p.ttc.stdev),
                format!("{:.0}", p.tw.mean),
                format!("{:.0}", p.tw.stdev),
            ]);
        }
    }
    println!(
        "{}",
        report::markdown_table(
            &[
                "#Pilots",
                "#Tasks",
                "TTC mean(s)",
                "TTC stdev",
                "Tw mean(s)",
                "Tw stdev"
            ],
            &rows
        )
    );
}

fn ablation_sched(opts: &Options) {
    println!("## Ablation — late-binding scheduler: backfill vs round robin\n");
    let sizes = sizes(opts).unwrap_or_else(|| vec![256, 1024]);
    let mut rows = Vec::new();
    for backfill in [true, false] {
        let r = run(&paper::scheduler_ablation(
            backfill,
            opts.reps,
            opts.seed,
            Some(sizes.clone()),
        ));
        for p in &r.points {
            let restarts: f64 =
                p.runs.iter().map(|x| x.restarts as f64).sum::<f64>() / p.runs.len().max(1) as f64;
            rows.push(vec![
                if backfill { "backfill" } else { "round-robin" }.to_string(),
                p.n_tasks.to_string(),
                format!("{:.0}", p.ttc.mean),
                format!("{:.0}", p.ttc.stdev),
                format!("{restarts:.1}"),
            ]);
        }
    }
    println!(
        "{}",
        report::markdown_table(
            &[
                "Scheduler",
                "#Tasks",
                "TTC mean(s)",
                "TTC stdev",
                "mean restarts/run"
            ],
            &rows
        )
    );
}

fn ablation_select(opts: &Options) {
    println!("## Ablation — resource selection: bundle-ranked vs random\n");
    let sizes = sizes(opts).unwrap_or_else(|| vec![256, 1024]);
    let mut rows = Vec::new();
    for ranked in [false, true] {
        let r = run(&paper::selection_ablation(
            ranked,
            opts.reps,
            opts.seed,
            Some(sizes.clone()),
        ));
        for p in &r.points {
            rows.push(vec![
                if ranked { "ranked-by-wait" } else { "random" }.to_string(),
                p.n_tasks.to_string(),
                format!("{:.0}", p.ttc.mean),
                format!("{:.0}", p.tw.mean),
                format!("{:.0}", p.tw.stdev),
            ]);
        }
    }
    println!(
        "{}",
        report::markdown_table(
            &[
                "Selection",
                "#Tasks",
                "TTC mean(s)",
                "Tw mean(s)",
                "Tw stdev"
            ],
            &rows
        )
    );
}

/// Data-heavy regime: grow per-task input until Ts dominates TTC
/// (§IV-B: "Larger amounts of data could make Ts dominant").
fn ablation_data(opts: &Options) {
    println!("## Ablation — data-heavy regime: per-task input size sweep\n");
    let n_tasks = if opts.quick { 64 } else { 256 };
    let mut rows = Vec::new();
    for input_mb in [1.0, 10.0, 50.0, 200.0] {
        let app = bag_of_tasks(
            &format!("data-{input_mb}"),
            n_tasks,
            Distribution::Constant { value: 900.0 },
            input_mb,
            0.002,
        );
        let mut ttcs = Vec::new();
        let mut ts_fracs = Vec::new();
        for rep in 0..opts.reps {
            let seed = SimRng::new(opts.seed)
                .fork_indexed("ablation-data", (input_mb as u64) << 8 | rep as u64)
                .root_seed();
            let mut rng = SimRng::new(seed).fork("submit");
            let submit_at = SimTime::from_secs(rng.uniform(4.0, 16.0) * 3600.0);
            let result = run_application(
                &paper::testbed(),
                &app,
                &paper::late_strategy(3),
                &RunOptions {
                    seed,
                    submit_at,
                    ..Default::default()
                },
            );
            if let Ok(r) = result {
                ttcs.push(r.breakdown.ttc.as_secs());
                ts_fracs.push(r.breakdown.ts.as_secs() / r.breakdown.ttc.as_secs());
            }
        }
        let ttc = Summary::of(&ttcs).expect("runs succeeded");
        let frac = Summary::of(&ts_fracs).expect("runs succeeded");
        rows.push(vec![
            format!("{input_mb:.0}"),
            format!("{:.0}", ttc.mean),
            format!("{:.2}", frac.mean),
        ]);
    }
    println!(
        "{}",
        report::markdown_table(
            &["Input MB/task", "TTC mean(s)", "Ts fraction of TTC"],
            &rows
        )
    );
}

/// Long-task crossover: with Tx ≫ Tw, early binding's bigger pilot wins
/// back (§IV-B: "early binding would still be desirable for applications
/// with a duration of Tx long enough...").
fn ablation_crossover(opts: &Options) {
    println!("## Ablation — task-duration crossover: early vs late binding\n");
    let n_tasks = if opts.quick { 64 } else { 256 };
    let mut rows = Vec::new();
    for task_mins in [15.0, 60.0, 240.0] {
        for (label, strategy) in [
            ("early-1p", paper::early_strategy()),
            ("late-3p", paper::late_strategy(3)),
        ] {
            let app = bag_of_tasks(
                &format!("cross-{task_mins}"),
                n_tasks,
                Distribution::Constant {
                    value: task_mins * 60.0,
                },
                1.0,
                0.002,
            );
            let mut ttcs = Vec::new();
            for rep in 0..opts.reps {
                let seed = SimRng::new(opts.seed)
                    .fork_indexed(&format!("crossover-{label}-{task_mins}"), rep as u64)
                    .root_seed();
                let mut rng = SimRng::new(seed).fork("submit");
                let submit_at = SimTime::from_secs(rng.uniform(4.0, 16.0) * 3600.0);
                if let Ok(r) = run_application(
                    &paper::testbed(),
                    &app,
                    &strategy,
                    &RunOptions {
                        seed,
                        submit_at,
                        ..Default::default()
                    },
                ) {
                    ttcs.push(r.breakdown.ttc.as_secs());
                }
            }
            if let Some(s) = Summary::of(&ttcs) {
                rows.push(vec![
                    format!("{task_mins:.0}"),
                    label.to_string(),
                    format!("{:.0}", s.mean),
                    format!("{:.0}", s.stdev),
                    s.n.to_string(),
                ]);
            }
        }
    }
    println!(
        "{}",
        report::markdown_table(
            &["Task mins", "Strategy", "TTC mean(s)", "TTC stdev", "runs"],
            &rows
        )
    );
}

/// Throughput metric (§V: "generalizing to investigate different metrics
/// including throughput").
fn ablation_throughput(opts: &Options) {
    println!("## Ablation — throughput (tasks/hour) per strategy\n");
    let sizes = sizes(opts).unwrap_or_else(|| vec![256, 1024]);
    let mut rows = Vec::new();
    for id in 1..=4u32 {
        let r = run(&paper::experiment(
            id,
            opts.reps,
            opts.seed,
            Some(sizes.clone()),
        ));
        for p in &r.points {
            if p.ttc.n == 0 {
                continue;
            }
            let tput: Vec<f64> = p
                .runs
                .iter()
                .map(|x| f64::from(x.n_tasks) / (x.breakdown.ttc.as_secs() / 3600.0))
                .collect();
            let eff: Vec<f64> = p.runs.iter().map(|x| x.allocation_efficiency()).collect();
            let s = Summary::of(&tput).expect("non-empty");
            let e = Summary::of(&eff).expect("non-empty");
            rows.push(vec![
                r.id.clone(),
                p.n_tasks.to_string(),
                format!("{:.0}", s.mean),
                format!("{:.0}", s.stdev),
                format!("{:.2}", e.mean),
            ]);
        }
    }
    println!(
        "{}",
        report::markdown_table(
            &[
                "Experiment",
                "#Tasks",
                "tasks/hour mean",
                "stdev",
                "alloc efficiency"
            ],
            &rows
        )
    );
}

/// Heterogeneous task sizes (§V: "distributed applications comprised of
/// non-uniform task sizes").
fn ablation_hetero(opts: &Options) {
    println!("## Ablation — heterogeneous task-duration mixes (late, 3 pilots)\n");
    let n_tasks = if opts.quick { 64 } else { 256 };
    let mixes: Vec<(&str, Distribution)> = vec![
        ("constant-15m", Distribution::Constant { value: 900.0 }),
        (
            "gaussian",
            Distribution::truncated_gaussian(900.0, 300.0, 60.0, 1800.0),
        ),
        (
            "bimodal-short-long",
            Distribution::Mixture {
                p: 0.8,
                a: Box::new(Distribution::Constant { value: 300.0 }),
                b: Box::new(Distribution::Constant { value: 3600.0 }),
            },
        ),
        (
            "lognormal-heavy-tail",
            Distribution::LogNormal {
                mu: 6.5,
                sigma: 0.8,
            },
        ),
    ];
    let mut rows = Vec::new();
    for (label, dist) in mixes {
        let app = bag_of_tasks(&format!("hetero-{label}"), n_tasks, dist, 1.0, 0.002);
        let mut ttcs = Vec::new();
        for rep in 0..opts.reps {
            let seed = SimRng::new(opts.seed)
                .fork_indexed(&format!("hetero-{label}"), rep as u64)
                .root_seed();
            let mut rng = SimRng::new(seed).fork("submit");
            let submit_at = SimTime::from_secs(rng.uniform(4.0, 16.0) * 3600.0);
            if let Ok(r) = run_application(
                &paper::testbed(),
                &app,
                &paper::late_strategy(3),
                &RunOptions {
                    seed,
                    submit_at,
                    ..Default::default()
                },
            ) {
                ttcs.push(r.breakdown.ttc.as_secs());
            }
        }
        if let Some(s) = Summary::of(&ttcs) {
            rows.push(vec![
                label.to_string(),
                format!("{:.0}", s.mean),
                format!("{:.0}", s.stdev),
                s.n.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        report::markdown_table(&["Duration mix", "TTC mean(s)", "TTC stdev", "runs"], &rows)
    );
}

/// Adaptive vs static execution on a deliberately poor initial choice
/// (§V: dynamic execution).
fn ablation_adaptive(opts: &Options) {
    use aimes::adaptive::{run_adaptive, AdaptiveConfig};
    use aimes_strategy::{PilotSizing, ResourceSelection};
    println!("## Ablation — dynamic execution: static vs adaptive strategy\n");
    let n_tasks = if opts.quick { 64 } else { 256 };
    let app = bag_of_tasks(
        "adaptive",
        n_tasks,
        Distribution::Constant { value: 900.0 },
        1.0,
        0.002,
    );
    let mut base = ExecutionStrategy::paper_late(2);
    base.pilot_count = 1;
    base.sizing = PilotSizing::Fixed(n_tasks);
    base.selection = ResourceSelection::Fixed(vec!["hopper".into()]);
    let mut rows = Vec::new();
    for (label, adaptive) in [("static-pinned", false), ("adaptive", true)] {
        let mut ttcs = Vec::new();
        let mut rescued = 0usize;
        for rep in 0..opts.reps {
            // Paired seeds: both modes face the same background load and
            // submission instant.
            let seed = SimRng::new(opts.seed)
                .fork_indexed("adaptive-pair", rep as u64)
                .root_seed();
            let mut rng = SimRng::new(seed).fork("submit");
            let submit_at = SimTime::from_secs(rng.uniform(4.0, 16.0) * 3600.0);
            let run_opts = RunOptions {
                seed,
                submit_at,
                ..Default::default()
            };
            if adaptive {
                let cfg = AdaptiveConfig {
                    base: base.clone(),
                    patience: aimes_sim::SimDuration::from_mins(20.0),
                    reinforce_by: 1,
                    max_rounds: 3,
                };
                if let Ok(r) = run_adaptive(&paper::testbed(), &app, &cfg, &run_opts) {
                    ttcs.push(r.breakdown.ttc.as_secs());
                    if r.reinforcement_rounds > 0 {
                        rescued += 1;
                    }
                }
            } else if let Ok(r) = run_application(&paper::testbed(), &app, &base, &run_opts) {
                ttcs.push(r.breakdown.ttc.as_secs());
            }
        }
        if let Some(s) = Summary::of(&ttcs) {
            rows.push(vec![
                label.to_string(),
                format!("{:.0}", s.mean),
                format!("{:.0}", s.stdev),
                format!("{:.0}", s.max),
                rescued.to_string(),
                s.n.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        report::markdown_table(
            &[
                "Mode",
                "TTC mean(s)",
                "stdev",
                "max",
                "runs reinforced",
                "runs"
            ],
            &rows
        )
    );
}

/// Walltime-sensitivity: explicitly under/over-requested pilot walltimes
/// (FixedSecs) under backfill vs round robin.
fn ablation_walltime(opts: &Options) {
    use aimes_strategy::{PilotSizing, WalltimePolicy};
    println!("## Ablation — walltime sensitivity (late binding, 2 pilots)\n");
    let n_tasks = if opts.quick { 32 } else { 64 };
    // 2 pilots x (n/4) cores → 2 waves of 900 s each per pilot, ~1900 s
    // needed; sweep the requested walltime across that boundary. An idle
    // pool isolates the walltime effect from queue-wait noise.
    let pool: Vec<aimes_cluster::ClusterConfig> = ["wa", "wb", "wc"]
        .iter()
        .map(|n| aimes_cluster::ClusterConfig::test(n, 4096))
        .collect();
    let app = bag_of_tasks(
        "walltime",
        n_tasks,
        Distribution::Constant { value: 900.0 },
        1.0,
        0.002,
    );
    let mut rows = Vec::new();
    for secs in [1000u64, 2000, 4000, 8000] {
        for scheduler in [
            aimes_pilot::UnitScheduler::Backfill,
            aimes_pilot::UnitScheduler::RoundRobin,
        ] {
            let mut strategy = ExecutionStrategy::paper_late(2);
            strategy.scheduler = scheduler;
            strategy.sizing = PilotSizing::Fixed(n_tasks / 4);
            strategy.walltime = WalltimePolicy::FixedSecs(secs);
            strategy.selection = aimes_strategy::ResourceSelection::Random;
            let mut ttcs = Vec::new();
            let mut failures = 0usize;
            let mut restarts = 0u64;
            for rep in 0..opts.reps {
                let seed = SimRng::new(opts.seed)
                    .fork_indexed(&format!("walltime-{secs}-{scheduler:?}"), rep as u64)
                    .root_seed();
                let mut rng = SimRng::new(seed).fork("submit");
                let submit_at = SimTime::from_secs(rng.uniform(4.0, 16.0) * 3600.0);
                match run_application(
                    &pool,
                    &app,
                    &strategy,
                    &RunOptions {
                        seed,
                        submit_at,
                        ..Default::default()
                    },
                ) {
                    Ok(r) => {
                        ttcs.push(r.breakdown.ttc.as_secs());
                        restarts += r.restarts;
                        if r.units_failed > 0 {
                            failures += 1;
                        }
                    }
                    Err(_) => failures += 1,
                }
            }
            let (mean, n) = match Summary::of(&ttcs) {
                Some(s) => (format!("{:.0}", s.mean), s.n),
                None => ("-".into(), 0),
            };
            rows.push(vec![
                secs.to_string(),
                format!("{scheduler:?}"),
                mean,
                n.to_string(),
                failures.to_string(),
                restarts.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        report::markdown_table(
            &[
                "Walltime(s)",
                "Scheduler",
                "TTC mean(s)",
                "ok runs",
                "degraded/failed",
                "restarts"
            ],
            &rows
        )
    );
}

/// Debug-queue ablation: small short pilots routed to the testbed's
/// high-priority debug queues vs the normal queues — the classic pilot
/// trick of exploiting queue structure (enabled by the Bundle knowing the
/// queue composition).
fn ablation_queue(opts: &Options) {
    use aimes_strategy::ResourceSelection;
    println!("## Ablation — submission queue: normal vs debug (5-min tasks)\n");
    let n_tasks = if opts.quick { 16 } else { 48 };
    // 5-minute tasks keep the late-3p walltime under the 30-min debug
    // ceiling; the pilots are small enough for the debug core caps.
    let app = bag_of_tasks(
        "queue",
        n_tasks,
        Distribution::Constant { value: 300.0 },
        1.0,
        0.002,
    );
    let mut rows = Vec::new();
    for queue in [None, Some("debug".to_string())] {
        let mut strategy = ExecutionStrategy::paper_late(3);
        strategy.selection = ResourceSelection::Random;
        strategy.queue = queue.clone();
        let mut ttcs = Vec::new();
        let mut tws = Vec::new();
        for rep in 0..opts.reps {
            // Paired seeds across the two queue settings.
            let seed = SimRng::new(opts.seed)
                .fork_indexed("queue-pair", rep as u64)
                .root_seed();
            let mut rng = SimRng::new(seed).fork("submit");
            let submit_at = SimTime::from_secs(rng.uniform(4.0, 16.0) * 3600.0);
            if let Ok(r) = run_application(
                &paper::testbed(),
                &app,
                &strategy,
                &RunOptions {
                    seed,
                    submit_at,
                    ..Default::default()
                },
            ) {
                ttcs.push(r.breakdown.ttc.as_secs());
                tws.push(r.breakdown.tw.as_secs());
            }
        }
        if let (Some(t), Some(w)) = (Summary::of(&ttcs), Summary::of(&tws)) {
            rows.push(vec![
                queue.unwrap_or_else(|| "normal".into()),
                format!("{:.0}", t.mean),
                format!("{:.0}", t.max),
                format!("{:.0}", w.mean),
                format!("{:.0}", w.max),
                t.n.to_string(),
            ]);
        }
    }
    println!(
        "{}",
        report::markdown_table(
            &[
                "Queue",
                "TTC mean(s)",
                "TTC max",
                "Tw mean(s)",
                "Tw max",
                "runs"
            ],
            &rows
        )
    );
}

/// Fault sweep: failure rate on the x-axis, measuring what self-healing
/// costs and what it saves. Each rate drives both the per-unit fault
/// chance and the expected random-outage count per resource; every
/// schedule is replayed three ways — oracle recovery (reacts at the
/// injection instant, PR 1 behavior), detection-driven recovery (reacts
/// only to missed heartbeats and tripped breakers), and no recovery.
/// Emits the markdown table plus a JSON block for downstream plotting.
/// With `--fail-on-error`, any failed run in a healing arm (oracle or
/// detect) exits non-zero — the chaos-smoke CI gate.
/// Coarse failure class for sweep error tallies.
fn error_class(e: &aimes::middleware::RunError) -> &'static str {
    match e {
        aimes::middleware::RunError::PilotsDrained { .. } => "drained",
        aimes::middleware::RunError::ResourceLost { .. } => "lost",
        aimes::middleware::RunError::DeadlineExceeded { .. } => "deadline",
        _ => "other",
    }
}

/// The one per-run failure line every sweep prints, with the same
/// `arm=.. rep=.. seed=..` keys the manifest's failure records carry —
/// stderr and `campaign.jsonl` always agree on what failed and why.
fn report_arm_failure(sweep: &str, arm: &str, rep: usize, seed: u64, err: &str) {
    eprintln!("{sweep} arm failed: arm={arm} rep={rep} seed={seed}: {err}");
}

/// The shared `--fail-on-error` exit for every sweep.
fn exit_fail_on_error(sweep: &str, failures: usize) -> ! {
    eprintln!("{failures} {sweep} run(s) failed under --fail-on-error");
    std::process::exit(1);
}

/// Campaign observability for one sweep: the `campaign.jsonl` recorder
/// (when `--campaign-out`), the live progress line (when `--progress`),
/// and the merged engine profile (when `--profile-out`). All default
/// off, so sweep output at defaults is untouched by this layer.
struct Observatory {
    recorder: Option<aimes::campaign::CampaignRecorder>,
    sender: Option<aimes::campaign::CampaignSender>,
    progress: Option<aimes::campaign::Progress>,
    timing: bool,
    /// Per-run profile collection point, merged in job order at close.
    profile: Option<(std::path::PathBuf, ProfileAccumulator)>,
    command: String,
    seed: u64,
    alloc_before: heap::AllocSnapshot,
    wall_started: std::time::Instant,
}

impl Observatory {
    /// Open the manifest (writing its meta line) and reset the pool's
    /// accounting so a timing-mode pool record covers exactly this sweep.
    fn open(opts: &Options, command: &str, total_jobs: usize) -> Observatory {
        let recorder = opts.campaign_out.as_ref().map(|path| {
            aimes::campaign::CampaignRecorder::create(
                path,
                &aimes::campaign::CampaignMeta::new(command, opts.seed, total_jobs as u64),
                opts.campaign_timing,
            )
            .unwrap_or_else(|e| {
                eprintln!("cannot create campaign manifest {}: {e}", path.display());
                std::process::exit(2);
            })
        });
        if recorder.is_some() {
            rayon::reset_pool_stats();
        }
        let sender = recorder.as_ref().map(|r| r.sender());
        let progress = opts
            .progress
            .then(|| aimes::campaign::Progress::new(total_jobs as u64));
        let profile = opts
            .profile_out
            .as_ref()
            .map(|path| (path.clone(), ProfileAccumulator::new()));
        Observatory {
            recorder,
            sender,
            progress,
            timing: opts.campaign_timing,
            profile,
            command: command.to_string(),
            seed: opts.seed,
            alloc_before: heap::snapshot(),
            wall_started: std::time::Instant::now(),
        }
    }

    /// The borrows the worker closures capture. When profiling is on,
    /// each worker makes a fresh per-run [`Profiler`] (the handle is
    /// `!Send`) and records its report into the accumulator by job index.
    fn handles(
        &self,
    ) -> (
        Option<&aimes::campaign::CampaignSender>,
        Option<&aimes::campaign::Progress>,
        Option<&ProfileAccumulator>,
    ) {
        (
            self.sender.as_ref(),
            self.progress.as_ref(),
            self.profile.as_ref().map(|(_, acc)| acc),
        )
    }

    /// Finish the progress line, canonicalize the manifest (in timing
    /// mode the pool's accounting goes in as the final record), and write
    /// the merged profile document.
    fn close(self) {
        if let Some(progress) = &self.progress {
            progress.finish();
        }
        drop(self.sender);
        if let Some(recorder) = self.recorder {
            let pool = self
                .timing
                .then(|| aimes::campaign::PoolRecord::from_stats(&rayon::pool_stats()));
            if let Err(e) = recorder.close(pool.as_ref()) {
                eprintln!("cannot finalize campaign manifest: {e}");
                std::process::exit(2);
            }
        }
        let Some((path, acc)) = self.profile else {
            return;
        };
        let merged = acc.merged();
        // Host timing and allocator counters are volatile (worker-count
        // and host dependent), so they are gated exactly like the
        // manifest's wall-clock fields: only present in timing mode.
        let timing = self.timing.then(|| {
            let delta = heap::snapshot().since(&self.alloc_before);
            let events = merged.engine.events_processed;
            TimingInputs {
                total_wall_secs: self.wall_started.elapsed().as_secs_f64(),
                sequential: false,
                run_walls: Vec::new(),
                alloc: Some(AllocSection {
                    allocs: delta.allocs,
                    bytes_allocated: delta.bytes_allocated,
                    peak_bytes: delta.peak_bytes,
                    allocs_per_event: if events > 0 {
                        delta.allocs as f64 / events as f64
                    } else {
                        0.0
                    },
                }),
            }
        });
        let doc = ProfileDoc::build(&self.command, self.seed, acc.runs(), &merged, timing);
        if let Err(e) = doc.validate() {
            eprintln!("internal error: produced invalid profile doc: {e}");
            std::process::exit(2);
        }
        let json = serde_json::to_string_pretty(&doc).expect("profile doc serializes");
        if let Err(e) = std::fs::write(&path, format!("{json}\n")) {
            eprintln!("cannot write profile doc {}: {e}", path.display());
            std::process::exit(2);
        }
        eprintln!("wrote profile doc {}", path.display());
    }
}

fn ablation_faults(opts: &Options) {
    use aimes_fault::{FaultSpec, RecoveryPolicy};

    #[derive(serde::Serialize)]
    struct SweepPoint {
        failure_rate: f64,
        recovery: String,
        reps: usize,
        completed: usize,
        ttc_mean_secs: f64,
        tr_mean_secs: f64,
        td_mean_secs: f64,
        wasted_core_hours_mean: f64,
        restarts: u64,
        replacements: u64,
        replans: u64,
        false_suspicions: u64,
        errors: std::collections::BTreeMap<String, usize>,
    }

    println!("## Ablation — fault injection & self-healing (late binding, 2 pilots)\n");
    let n_tasks = if opts.quick { 32 } else { 64 };
    let pool: Vec<aimes_cluster::ClusterConfig> = ["fa", "fb", "fc"]
        .iter()
        .map(|n| aimes_cluster::ClusterConfig::test(n, 4096))
        .collect();
    let app = bag_of_tasks(
        "faults",
        n_tasks,
        Distribution::Constant { value: 900.0 },
        1.0,
        0.002,
    );
    let mut strategy = ExecutionStrategy::paper_late(2);
    strategy.selection = aimes_strategy::ResourceSelection::Random;
    // A generous fixed walltime keeps pilot lifetime out of the picture:
    // fault-driven retries stretch runs well past the fault-free estimate,
    // and walltime underestimation is the walltime ablation's topic.
    strategy.walltime = aimes_strategy::WalltimePolicy::FixedSecs(6 * 3600);

    let rates = [0.0, 0.05, 0.1, 0.2, 0.4];
    let modes = ["oracle", "detect", "off"];

    // Fan the whole (rate × mode × rep) cross product across the worker
    // pool. Each run returns a plain Send value; aggregation and every
    // print (stdout table, stderr failure lines) happen below in job
    // order, so the sweep's output is byte-identical at any --jobs.
    struct FaultsRun {
        ttc: f64,
        tr: f64,
        td: f64,
        wasted: f64,
        restarts: u64,
        replacements: u64,
        replans: u64,
        false_suspicions: u64,
    }
    let reps_n = opts.reps;
    let jobs: Vec<(usize, f64, &str, usize)> = rates
        .iter()
        .flat_map(|&rate| {
            modes
                .into_iter()
                .flat_map(move |mode| (0..reps_n).map(move |rep| (rate, mode, rep)))
        })
        .enumerate()
        .map(|(job, (rate, mode, rep))| (job, rate, mode, rep))
        .collect();
    let obs = Observatory::open(opts, "ablation-faults", jobs.len());
    let (sender, progress, profile) = obs.handles();
    type FaultsOutcome = (u64, Result<FaultsRun, (&'static str, String)>);
    let outcomes: Vec<FaultsOutcome> = jobs
        .par_iter()
        .map(|&(job, rate, mode, rep)| {
            let started = sender.map_or(0.0, |s| s.elapsed_secs());
            let t_build = std::time::Instant::now();
            // Outages are placed inside the first hour after submission —
            // the window the run actually occupies — so the rate axis
            // genuinely exercises pilot death, not just unit faults.
            let faults = FaultSpec {
                unit_failure_chance: rate,
                random_outages_per_resource: 2.0 * rate,
                random_outage_duration_secs: (300.0, 900.0),
                horizon_secs: 3600.0,
                ..FaultSpec::none()
            };
            // Same seed for all three recovery arms: identical fault
            // schedules, the only difference is how the run heals.
            let seed = SimRng::new(opts.seed)
                .fork_indexed(&format!("faults-{rate}"), rep as u64)
                .root_seed();
            let mut rng = SimRng::new(seed).fork("submit");
            let submit_at = SimTime::from_secs(rng.uniform(4.0, 16.0) * 3600.0);
            let recovery = match mode {
                "oracle" => Some(RecoveryPolicy::default()),
                "detect" => Some(RecoveryPolicy::with_detection()),
                _ => None,
            };
            let profiler = profile.map(|_| Profiler::new());
            let options = RunOptions {
                seed,
                submit_at,
                faults: Some(faults),
                recovery,
                recorder_dump_dir: opts.dump_dir.clone(),
                run_tag: Some(format!("faults-{rate}-{mode}-r{rep}")),
                profiler: profiler.clone(),
                ..Default::default()
            };
            let build_secs = t_build.elapsed().as_secs_f64();
            let t_sim = std::time::Instant::now();
            let outcome = run_application(&pool, &app, &strategy, &options);
            let simulate_secs = t_sim.elapsed().as_secs_f64();
            if let (Some(acc), Some(prof)) = (profile, &profiler) {
                acc.record(job as u64, prof.report());
            }
            if let Some(sender) = sender {
                sender.record_outcome(
                    job as u64,
                    "ablation-faults",
                    &format!("{rate:.2}/{mode}"),
                    rep as u64,
                    n_tasks,
                    seed,
                    &outcome,
                    started,
                    build_secs,
                    simulate_secs,
                );
            }
            if let Some(progress) = progress {
                progress.tick(outcome.is_err());
            }
            let outcome = outcome
                .map(|r| FaultsRun {
                    ttc: r.breakdown.ttc.as_secs(),
                    tr: r.breakdown.tr.as_secs(),
                    td: r.breakdown.td.as_secs(),
                    wasted: r.wasted_core_hours,
                    restarts: r.restarts,
                    replacements: r.replacements,
                    replans: r.replans,
                    false_suspicions: r.false_suspicions,
                })
                .map_err(|e| (error_class(&e), e.to_string()));
            (seed, outcome)
        })
        .collect();
    obs.close();

    let mut rows = Vec::new();
    let mut points: Vec<SweepPoint> = Vec::new();
    let mut healing_errors = 0usize;
    let mut outcome_iter = outcomes.into_iter();
    for &rate in &rates {
        for mode in modes {
            let mut ttcs = Vec::new();
            let mut trs = Vec::new();
            let mut tds = Vec::new();
            let mut wasted = Vec::new();
            let mut restarts = 0u64;
            let mut replacements = 0u64;
            let mut replans = 0u64;
            let mut false_suspicions = 0u64;
            let mut errors: std::collections::BTreeMap<String, usize> =
                std::collections::BTreeMap::new();
            for rep in 0..opts.reps {
                let (seed, out) = outcome_iter.next().expect("one outcome per job");
                match out {
                    Ok(r) => {
                        ttcs.push(r.ttc);
                        trs.push(r.tr);
                        tds.push(r.td);
                        wasted.push(r.wasted);
                        restarts += r.restarts;
                        replacements += r.replacements;
                        replans += r.replans;
                        false_suspicions += r.false_suspicions;
                    }
                    Err((class, e)) => {
                        *errors.entry(class.to_string()).or_insert(0) += 1;
                        if mode != "off" {
                            healing_errors += 1;
                            report_arm_failure(
                                "ablation-faults",
                                &format!("{rate:.2}/{mode}"),
                                rep,
                                seed,
                                &e,
                            );
                        }
                    }
                }
            }
            let mean = |v: &[f64]| {
                if v.is_empty() {
                    0.0
                } else {
                    v.iter().sum::<f64>() / v.len() as f64
                }
            };
            rows.push(vec![
                format!("{rate:.2}"),
                mode.to_string(),
                format!("{}/{}", ttcs.len(), opts.reps),
                if ttcs.is_empty() {
                    "-".into()
                } else {
                    format!("{:.0}", mean(&ttcs))
                },
                format!("{:.0}", mean(&trs)),
                format!("{:.0}", mean(&tds)),
                format!("{:.2}", mean(&wasted)),
                restarts.to_string(),
                replacements.to_string(),
                replans.to_string(),
                false_suspicions.to_string(),
            ]);
            points.push(SweepPoint {
                failure_rate: rate,
                recovery: mode.to_string(),
                reps: opts.reps,
                completed: ttcs.len(),
                ttc_mean_secs: mean(&ttcs),
                tr_mean_secs: mean(&trs),
                td_mean_secs: mean(&tds),
                wasted_core_hours_mean: mean(&wasted),
                restarts,
                replacements,
                replans,
                false_suspicions,
                errors,
            });
        }
    }
    println!(
        "{}",
        report::markdown_table(
            &[
                "Rate",
                "Recovery",
                "Completed",
                "TTC mean(s)",
                "Tr mean(s)",
                "Td mean(s)",
                "Wasted(ch)",
                "Restarts",
                "Replacements",
                "Replans",
                "FalseSusp"
            ],
            &rows
        )
    );
    println!(
        "\n### JSON\n```json\n{}\n```",
        serde_json::to_string_pretty(&points).expect("sweep points serialize")
    );
    if opts.fail_on_error && healing_errors > 0 {
        exit_fail_on_error("ablation-faults healing-arm", healing_errors);
    }
}

/// Correlated-failure ablation: a two-domain pool where a permanent
/// trigger outage cascades across every resource the workload runs on,
/// replayed three ways on paired seeds — reactive detection-driven
/// recovery, proactive domain evacuation, and evacuation plus
/// checkpointed unit salvage. The evacuation lead time (first alarm to
/// first completed drain) is read back from the run journal through
/// the analytics reconstruction, not from the simulator's own counters.
/// With `--fail-on-error`, any failed run exits non-zero — the cascade
/// arm of the chaos-smoke CI gate.
fn ablation_cascade(opts: &Options) {
    use aimes_fault::{
        CascadeSpec, DomainSpec, EvacuationSpec, FaultSpec, OutageKind, OutageSpec, RecoveryPolicy,
    };

    #[derive(serde::Serialize)]
    struct SweepPoint {
        arm: String,
        reps: usize,
        completed: usize,
        ttc_mean_secs: f64,
        wasted_core_hours_mean: f64,
        salvaged_core_hours_mean: f64,
        evacuation_lead_mean_secs: Option<f64>,
        domain_alarms: u64,
        evacuations: u64,
        checkpoints: u64,
        resumes: u64,
        errors: std::collections::BTreeMap<String, usize>,
    }

    println!("## Ablation — correlated-failure domains: evacuation & checkpointed salvage\n");
    let n_tasks = if opts.quick { 16 } else { 32 };
    let pool: Vec<aimes_cluster::ClusterConfig> = ["ca", "cb", "cc", "cd", "ce", "cf"]
        .iter()
        .map(|n| aimes_cluster::ClusterConfig::test(n, 4096))
        .collect();
    let app = bag_of_tasks(
        "cascade",
        n_tasks,
        Distribution::Constant { value: 900.0 },
        1.0,
        0.002,
    );
    // Pin all three pilots inside the doomed domain: the cascade takes
    // out the entire footprint, so survival hinges on the recovery arm.
    let mut strategy = ExecutionStrategy::paper_late(3);
    strategy.selection =
        aimes_strategy::ResourceSelection::Fixed(vec!["ca".into(), "cb".into(), "cc".into()]);
    strategy.walltime = aimes_strategy::WalltimePolicy::FixedSecs(6 * 3600);

    let faults = FaultSpec {
        cascade: Some(CascadeSpec {
            domains: vec![
                DomainSpec {
                    name: "zone-a".into(),
                    members: vec!["ca".into(), "cb".into(), "cc".into()],
                },
                DomainSpec {
                    name: "zone-b".into(),
                    members: vec!["cd".into(), "ce".into(), "cf".into()],
                },
            ],
            // Mid-execution: the bag's 900 s tasks are all in flight when
            // zone-a starts going down.
            trigger: OutageSpec {
                resource: "ca".into(),
                at_secs: 300.0,
                duration_secs: 0.0,
                kind: OutageKind::Permanent,
            },
            propagation_chance: 1.0,
            // Slow enough a spread that the second failure signal lands
            // while some domain member is still alive to drain.
            propagation_delay_secs: (120.0, 900.0),
        }),
        ..FaultSpec::none()
    };

    // One (arm × rep) run on the pool. The journal Rc and the analytics
    // reconstruction both live inside the closure; only plain Send data
    // crosses back. Aggregation and printing run sequentially in job
    // order, so output is byte-identical at any --jobs.
    struct CascadeRun {
        ttc: f64,
        wasted: f64,
        salvaged: f64,
        lead: Option<f64>,
        domain_alarms: u64,
        evacuations: u64,
        checkpoints: u64,
        resumes: u64,
    }
    let arms = ["reactive", "evacuate", "evac+ckpt"];
    let reps_n = opts.reps;
    let jobs: Vec<(usize, &str, usize)> = arms
        .iter()
        .flat_map(|&arm| (0..reps_n).map(move |rep| (arm, rep)))
        .enumerate()
        .map(|(job, (arm, rep))| (job, arm, rep))
        .collect();
    let obs = Observatory::open(opts, "ablation-cascade", jobs.len());
    let (sender, progress, profile) = obs.handles();
    type CascadeOutcome = (u64, Result<CascadeRun, (&'static str, String)>);
    let outcomes: Vec<CascadeOutcome> = jobs
        .par_iter()
        .map(|&(job, arm, rep)| {
            let started = sender.map_or(0.0, |s| s.elapsed_secs());
            let t_build = std::time::Instant::now();
            // Same seed across all three arms: identical cascade
            // schedules, the only difference is how the run survives.
            let seed = SimRng::new(opts.seed)
                .fork_indexed("cascade", rep as u64)
                .root_seed();
            let mut rng = SimRng::new(seed).fork("submit");
            let submit_at = SimTime::from_secs(rng.uniform(4.0, 16.0) * 3600.0);
            let mut recovery = RecoveryPolicy::with_detection();
            if arm != "reactive" {
                recovery.evacuation = Some(EvacuationSpec::default());
            }
            if arm == "evac+ckpt" {
                recovery.checkpoint_interval = aimes_sim::SimDuration::from_secs(120.0);
            }
            let journal =
                std::rc::Rc::new(std::cell::RefCell::new(aimes::journal::RunJournal::new()));
            let profiler = profile.map(|_| Profiler::new());
            let options = RunOptions {
                seed,
                submit_at,
                faults: Some(faults.clone()),
                recovery: Some(recovery),
                journal: Some(journal.clone()),
                recorder_dump_dir: opts.dump_dir.clone(),
                run_tag: Some(format!("cascade-{arm}-r{rep}")),
                profiler: profiler.clone(),
                ..Default::default()
            };
            let build_secs = t_build.elapsed().as_secs_f64();
            let t_sim = std::time::Instant::now();
            let outcome = run_application(&pool, &app, &strategy, &options);
            let simulate_secs = t_sim.elapsed().as_secs_f64();
            if let (Some(acc), Some(prof)) = (profile, &profiler) {
                acc.record(job as u64, prof.report());
            }
            if let Some(sender) = sender {
                sender.record_outcome(
                    job as u64,
                    "ablation-cascade",
                    arm,
                    rep as u64,
                    n_tasks,
                    seed,
                    &outcome,
                    started,
                    build_secs,
                    simulate_secs,
                );
            }
            if let Some(progress) = progress {
                progress.tick(outcome.is_err());
            }
            let outcome = outcome
                .map(|r| {
                    // The lead time comes from the journal via analytics,
                    // cross-checking the simulator's own counters.
                    let tl = aimes_analytics::timeline::reconstruct(&journal.borrow())
                        .expect("completed runs leave a well-formed journal");
                    CascadeRun {
                        ttc: r.breakdown.ttc.as_secs(),
                        wasted: r.wasted_core_hours,
                        salvaged: r.salvaged_core_hours,
                        lead: tl.evacuation_lead_secs,
                        domain_alarms: tl.domain_alarms as u64,
                        evacuations: tl.evacuations as u64,
                        checkpoints: tl.checkpoints as u64,
                        resumes: tl.resumes as u64,
                    }
                })
                .map_err(|e| (error_class(&e), e.to_string()));
            (seed, outcome)
        })
        .collect();
    obs.close();

    let mut rows = Vec::new();
    let mut points: Vec<SweepPoint> = Vec::new();
    let mut arm_errors = 0usize;
    let mut outcome_iter = outcomes.into_iter();
    for arm in arms {
        let mut ttcs = Vec::new();
        let mut wasted = Vec::new();
        let mut salvaged = Vec::new();
        let mut leads = Vec::new();
        let mut domain_alarms = 0u64;
        let mut evacuations = 0u64;
        let mut checkpoints = 0u64;
        let mut resumes = 0u64;
        let mut errors: std::collections::BTreeMap<String, usize> =
            std::collections::BTreeMap::new();
        for rep in 0..opts.reps {
            let (seed, out) = outcome_iter.next().expect("one outcome per job");
            match out {
                Ok(r) => {
                    ttcs.push(r.ttc);
                    wasted.push(r.wasted);
                    salvaged.push(r.salvaged);
                    if let Some(lead) = r.lead {
                        leads.push(lead);
                    }
                    domain_alarms += r.domain_alarms;
                    evacuations += r.evacuations;
                    checkpoints += r.checkpoints;
                    resumes += r.resumes;
                }
                Err((class, e)) => {
                    *errors.entry(class.to_string()).or_insert(0) += 1;
                    arm_errors += 1;
                    report_arm_failure("ablation-cascade", arm, rep, seed, &e);
                }
            }
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        let lead_mean = (!leads.is_empty()).then(|| mean(&leads));
        rows.push(vec![
            arm.to_string(),
            format!("{}/{}", ttcs.len(), opts.reps),
            if ttcs.is_empty() {
                "-".into()
            } else {
                format!("{:.0}", mean(&ttcs))
            },
            format!("{:.2}", mean(&wasted)),
            format!("{:.2}", mean(&salvaged)),
            lead_mean.map_or("-".into(), |l| format!("{l:.0}")),
            domain_alarms.to_string(),
            evacuations.to_string(),
            checkpoints.to_string(),
            resumes.to_string(),
        ]);
        points.push(SweepPoint {
            arm: arm.to_string(),
            reps: opts.reps,
            completed: ttcs.len(),
            ttc_mean_secs: mean(&ttcs),
            wasted_core_hours_mean: mean(&wasted),
            salvaged_core_hours_mean: mean(&salvaged),
            evacuation_lead_mean_secs: lead_mean,
            domain_alarms,
            evacuations,
            checkpoints,
            resumes,
            errors,
        });
    }
    println!(
        "{}",
        report::markdown_table(
            &[
                "Arm",
                "Completed",
                "TTC mean(s)",
                "Wasted(ch)",
                "Salvaged(ch)",
                "EvacLead(s)",
                "Alarms",
                "Evacuations",
                "Checkpoints",
                "Resumes"
            ],
            &rows
        )
    );
    println!(
        "\n### JSON\n```json\n{}\n```",
        serde_json::to_string_pretty(&points).expect("sweep points serialize")
    );
    if opts.fail_on_error && arm_errors > 0 {
        exit_fail_on_error("ablation-cascade", arm_errors);
    }
}

/// Information-degradation ablation: the same workload executed under
/// four information regimes — an oracle channel (every query measures
/// live), a streaming cache (5-minute refresh), a degraded channel
/// (corrupt/unavailable answers plus a one-resource blackout), and a
/// total blackout (no resource ever answers). Paired seeds isolate the
/// information regime from schedule noise; per-arm fallback-ladder
/// counters come through the MetricsRegistry (`bundle.info.*`), so the
/// same numbers land in the Perfetto trace when telemetry is exported.
/// With `--fail-on-error`, any failed run exits non-zero — degradation
/// must slow runs down, never kill them. `--dump-dir` routes flight-
/// recorder snapshots of any failure there for CI artifact collection.
fn ablation_info(opts: &Options) {
    use aimes_bundle::InfoConfig;
    use aimes_fault::{FaultSpec, InfoBlackoutSpec, InfoFaultSpec};
    use aimes_sim::Telemetry;

    #[derive(serde::Serialize)]
    struct InfoPoint {
        arm: String,
        reps: usize,
        completed: usize,
        ttc_mean_secs: f64,
        ttc_max_secs: f64,
        info_fallbacks: u64,
        stale_decision_secs: f64,
        counters: std::collections::BTreeMap<String, u64>,
    }

    println!("## Ablation — degraded-information execution (late binding, 3 pilots)\n");
    let n_tasks = if opts.quick { 32 } else { 128 };
    let app = bag_of_tasks(
        "info",
        n_tasks,
        Distribution::Constant { value: 900.0 },
        1.0,
        0.002,
    );
    let strategy = paper::late_strategy(3);
    let streaming = InfoConfig {
        base_refresh_secs: 300.0,
        ..InfoConfig::default()
    };
    let degraded_faults = FaultSpec {
        info: InfoFaultSpec {
            corrupt_chance: 0.25,
            unavailable_chance: 0.25,
            blackouts: vec![InfoBlackoutSpec {
                resource: "stampede".into(),
                at_secs: 0.0,
                duration_secs: 3600.0,
            }],
        },
        ..FaultSpec::none()
    };
    let blackout_faults = FaultSpec {
        info: InfoFaultSpec {
            blackouts: vec![InfoBlackoutSpec {
                resource: "*".into(),
                at_secs: 0.0,
                duration_secs: 1e9,
            }],
            ..InfoFaultSpec::default()
        },
        ..FaultSpec::none()
    };
    let arms: Vec<(&str, InfoConfig, Option<FaultSpec>)> = vec![
        ("oracle", InfoConfig::default(), None),
        ("streaming", streaming.clone(), None),
        ("degraded", streaming.clone(), Some(degraded_faults)),
        ("blackout", streaming, Some(blackout_faults)),
    ];

    // One (arm × rep) run on the pool; each run builds its own Telemetry
    // inside the closure and hands back only the `bundle.info.*` counter
    // slice. Aggregation and printing stay sequential in job order, so
    // output is byte-identical at any --jobs.
    struct InfoRun {
        ttc: f64,
        info_fallbacks: u64,
        stale_secs: f64,
        counters: Vec<(String, u64)>,
    }
    let reps_n = opts.reps;
    let jobs: Vec<(usize, usize, usize)> = (0..arms.len())
        .flat_map(|ai| (0..reps_n).map(move |rep| (ai, rep)))
        .enumerate()
        .map(|(job, (ai, rep))| (job, ai, rep))
        .collect();
    let obs = Observatory::open(opts, "ablation-info", jobs.len());
    let (sender, progress, profile) = obs.handles();
    let outcomes: Vec<(u64, Result<InfoRun, String>)> = jobs
        .par_iter()
        .map(|&(job, ai, rep)| {
            let started = sender.map_or(0.0, |s| s.elapsed_secs());
            let t_build = std::time::Instant::now();
            let (arm, info, faults) = &arms[ai];
            // Same seed across arms: identical workload, background load,
            // and submission instant — only the information regime moves.
            let seed = SimRng::new(opts.seed)
                .fork_indexed("info", rep as u64)
                .root_seed();
            let mut rng = SimRng::new(seed).fork("submit");
            let submit_at = SimTime::from_secs(rng.uniform(4.0, 16.0) * 3600.0);
            let telemetry = Telemetry::new();
            let profiler = profile.map(|_| Profiler::new());
            let options = RunOptions {
                seed,
                submit_at,
                faults: faults.clone(),
                info: info.clone(),
                telemetry: Some(telemetry.clone()),
                recorder_dump_dir: opts.dump_dir.clone(),
                run_tag: Some(format!("info-{arm}-r{rep}")),
                profiler: profiler.clone(),
                ..Default::default()
            };
            let testbed = paper::testbed();
            let build_secs = t_build.elapsed().as_secs_f64();
            let t_sim = std::time::Instant::now();
            let outcome = run_application(&testbed, &app, &strategy, &options);
            let simulate_secs = t_sim.elapsed().as_secs_f64();
            if let (Some(acc), Some(prof)) = (profile, &profiler) {
                acc.record(job as u64, prof.report());
            }
            if let Some(sender) = sender {
                sender.record_outcome(
                    job as u64,
                    "ablation-info",
                    arm,
                    rep as u64,
                    n_tasks,
                    seed,
                    &outcome,
                    started,
                    build_secs,
                    simulate_secs,
                );
            }
            if let Some(progress) = progress {
                progress.tick(outcome.is_err());
            }
            let outcome = outcome
                .map(|r| InfoRun {
                    ttc: r.breakdown.ttc.as_secs(),
                    info_fallbacks: r.info_fallbacks,
                    stale_secs: r.stale_decision_secs,
                    counters: r
                        .metrics
                        .iter()
                        .flat_map(|summary| summary.counters.iter())
                        .filter_map(|(name, v)| {
                            name.strip_prefix("bundle.info.")
                                .map(|short| (short.to_string(), *v))
                        })
                        .collect(),
                })
                .map_err(|e| e.to_string());
            (seed, outcome)
        })
        .collect();
    obs.close();

    let mut rows = Vec::new();
    let mut points = Vec::new();
    let mut failures = 0usize;
    let mut outcome_iter = outcomes.into_iter();
    for (arm, _, _) in &arms {
        let mut ttcs = Vec::new();
        let mut info_fallbacks = 0u64;
        let mut stale_secs = 0.0f64;
        let mut counters: std::collections::BTreeMap<String, u64> =
            std::collections::BTreeMap::new();
        for rep in 0..opts.reps {
            let (seed, out) = outcome_iter.next().expect("one outcome per job");
            match out {
                Ok(r) => {
                    ttcs.push(r.ttc);
                    info_fallbacks += r.info_fallbacks;
                    stale_secs += r.stale_secs;
                    for (short, v) in r.counters {
                        *counters.entry(short).or_insert(0) += v;
                    }
                }
                Err(e) => {
                    failures += 1;
                    report_arm_failure("ablation-info", arm, rep, seed, &e);
                }
            }
        }
        let (mean, max) = match Summary::of(&ttcs) {
            Some(s) => (s.mean, s.max),
            None => (0.0, 0.0),
        };
        let c = |k: &str| counters.get(k).copied().unwrap_or(0);
        rows.push(vec![
            arm.to_string(),
            format!("{}/{}", ttcs.len(), opts.reps),
            format!("{mean:.0}"),
            format!("{max:.0}"),
            c("fresh").to_string(),
            c("cache_hit").to_string(),
            (c("corrupt") + c("unavailable")).to_string(),
            c("fallback_stale_cache").to_string(),
            c("fallback_predictor").to_string(),
            c("fallback_static").to_string(),
            info_fallbacks.to_string(),
            format!("{stale_secs:.0}"),
        ]);
        points.push(InfoPoint {
            arm: arm.to_string(),
            reps: opts.reps,
            completed: ttcs.len(),
            ttc_mean_secs: mean,
            ttc_max_secs: max,
            info_fallbacks,
            stale_decision_secs: stale_secs,
            counters,
        });
    }
    println!(
        "{}",
        report::markdown_table(
            &[
                "Arm",
                "Completed",
                "TTC mean(s)",
                "TTC max(s)",
                "Fresh",
                "CacheHit",
                "Degraded",
                "StaleFB",
                "PredFB",
                "StaticFB",
                "InfoFB",
                "Stale(s)"
            ],
            &rows
        )
    );
    println!(
        "\n### JSON\n```json\n{}\n```",
        serde_json::to_string_pretty(&points).expect("info points serialize")
    );
    println!(
        "\nEvery arm must complete every run: degraded information descends \
         the fallback ladder (stale cache, predictor, static floor) and \
         slows selection down, but never panics or loses work."
    );
    if opts.fail_on_error && failures > 0 {
        exit_fail_on_error("ablation-info", failures);
    }
}

/// Detection-latency ablation: how the failure detector's tuning trades
/// detection delay Td against false positives and end-to-end TTC, scored
/// against the PR 1 oracle that reacts at the injection instant. The
/// scenario is pinned — a permanent outage takes down the only selected
/// resource shortly after the pilots start — so every arm recovers from
/// the same loss and differs only in how long it takes to notice.
fn ablation_detection(opts: &Options) {
    use aimes_fault::{DetectionSpec, FaultSpec, OutageKind, OutageSpec, PhiSpec, RecoveryPolicy};

    println!("## Ablation — failure-detection latency vs oracle recovery\n");
    let n_tasks = if opts.quick { 16 } else { 48 };
    let pool: Vec<aimes_cluster::ClusterConfig> = ["da", "db"]
        .iter()
        .map(|n| aimes_cluster::ClusterConfig::test(n, 4096))
        .collect();
    let app = bag_of_tasks(
        "detection",
        n_tasks,
        Distribution::Constant { value: 900.0 },
        1.0,
        0.002,
    );
    let mut strategy = ExecutionStrategy::paper_late(1);
    // Pin the initial placement so the permanent loss always hits the
    // resource actually in use; recovery must re-plan onto the survivor.
    strategy.selection = aimes_strategy::ResourceSelection::Fixed(vec!["da".into()]);
    strategy.walltime = aimes_strategy::WalltimePolicy::FixedSecs(6 * 3600);
    let faults = FaultSpec {
        outages: vec![OutageSpec {
            resource: "da".into(),
            at_secs: 300.0,
            duration_secs: 600.0,
            kind: OutageKind::Permanent,
        }],
        ..FaultSpec::none()
    };

    let timeout = |hb: f64, suspect: f64, declare: f64| DetectionSpec {
        heartbeat_secs: hb,
        suspect_after_secs: suspect,
        declare_after_secs: declare,
        ..DetectionSpec::default()
    };
    let configs: Vec<(&str, Option<DetectionSpec>)> = vec![
        ("oracle", None),
        ("hb30/declare120", Some(timeout(30.0, 75.0, 120.0))),
        ("hb60/declare300", Some(DetectionSpec::default())),
        ("hb120/declare600", Some(timeout(120.0, 300.0, 600.0))),
        (
            "phi(1,2)/w16",
            Some(DetectionSpec {
                phi: Some(PhiSpec {
                    suspect_phi: 1.0,
                    declare_phi: 2.0,
                    window: 16,
                }),
                ..DetectionSpec::default()
            }),
        ),
    ];

    // One (detector-config × rep) run on the pool. Failed runs don't
    // count toward the table means, but — unlike the pre-observatory
    // version that swallowed them — they now print the shared failure
    // line and land in the campaign manifest. Aggregation in job order
    // keeps the output byte-identical at any --jobs.
    struct DetectionRun {
        ttc: f64,
        tr: f64,
        td: f64,
        mean_td: f64,
        replans: u64,
        false_suspicions: u64,
    }
    let reps_n = opts.reps;
    let jobs: Vec<(usize, usize, usize)> = (0..configs.len())
        .flat_map(|ci| (0..reps_n).map(move |rep| (ci, rep)))
        .enumerate()
        .map(|(job, (ci, rep))| (job, ci, rep))
        .collect();
    let obs = Observatory::open(opts, "ablation-detection", jobs.len());
    let (sender, progress, profile) = obs.handles();
    let outcomes: Vec<(u64, Result<DetectionRun, String>)> = jobs
        .par_iter()
        .map(|&(job, ci, rep)| {
            let started = sender.map_or(0.0, |s| s.elapsed_secs());
            let t_build = std::time::Instant::now();
            let (label, det) = &configs[ci];
            let recovery = RecoveryPolicy {
                detection: det.clone(),
                ..RecoveryPolicy::default()
            };
            // Same seed across configs: the paired comparison isolates
            // detector tuning from schedule noise.
            let seed = SimRng::new(opts.seed)
                .fork_indexed("detection", rep as u64)
                .root_seed();
            let mut rng = SimRng::new(seed).fork("submit");
            let submit_at = SimTime::from_secs(rng.uniform(4.0, 16.0) * 3600.0);
            let profiler = profile.map(|_| Profiler::new());
            let options = RunOptions {
                seed,
                submit_at,
                faults: Some(faults.clone()),
                recovery: Some(recovery),
                run_tag: Some(format!("detection-{label}-r{rep}")),
                profiler: profiler.clone(),
                ..Default::default()
            };
            let build_secs = t_build.elapsed().as_secs_f64();
            let t_sim = std::time::Instant::now();
            let outcome = run_application(&pool, &app, &strategy, &options);
            let simulate_secs = t_sim.elapsed().as_secs_f64();
            if let (Some(acc), Some(prof)) = (profile, &profiler) {
                acc.record(job as u64, prof.report());
            }
            if let Some(sender) = sender {
                sender.record_outcome(
                    job as u64,
                    "ablation-detection",
                    label,
                    rep as u64,
                    n_tasks,
                    seed,
                    &outcome,
                    started,
                    build_secs,
                    simulate_secs,
                );
            }
            if let Some(progress) = progress {
                progress.tick(outcome.is_err());
            }
            let outcome = outcome
                .map(|r| DetectionRun {
                    ttc: r.breakdown.ttc.as_secs(),
                    tr: r.breakdown.tr.as_secs(),
                    td: r.breakdown.td.as_secs(),
                    mean_td: r.mean_detection_secs,
                    replans: r.replans,
                    false_suspicions: r.false_suspicions,
                })
                .map_err(|e| e.to_string());
            (seed, outcome)
        })
        .collect();
    obs.close();

    let mut rows = Vec::new();
    let mut outcome_iter = outcomes.into_iter();
    for (label, _) in &configs {
        let mut ttcs = Vec::new();
        let mut trs = Vec::new();
        let mut tds = Vec::new();
        let mut mean_tds = Vec::new();
        let mut replans = 0u64;
        let mut false_suspicions = 0u64;
        let mut completed = 0usize;
        for rep in 0..opts.reps {
            let (seed, out) = outcome_iter.next().expect("one outcome per job");
            match out {
                Ok(r) => {
                    completed += 1;
                    ttcs.push(r.ttc);
                    trs.push(r.tr);
                    tds.push(r.td);
                    mean_tds.push(r.mean_td);
                    replans += r.replans;
                    false_suspicions += r.false_suspicions;
                }
                Err(e) => report_arm_failure("ablation-detection", label, rep, seed, &e),
            }
        }
        let mean = |v: &[f64]| {
            if v.is_empty() {
                0.0
            } else {
                v.iter().sum::<f64>() / v.len() as f64
            }
        };
        rows.push(vec![
            label.to_string(),
            format!("{completed}/{}", opts.reps),
            format!("{:.0}", mean(&ttcs)),
            format!("{:.0}", mean(&trs)),
            format!("{:.0}", mean(&tds)),
            format!("{:.0}", mean(&mean_tds)),
            replans.to_string(),
            false_suspicions.to_string(),
        ]);
    }
    println!(
        "{}",
        report::markdown_table(
            &[
                "Detector",
                "Completed",
                "TTC mean(s)",
                "Tr mean(s)",
                "Td mean(s)",
                "MeanTd(s)",
                "Replans",
                "FalseSusp"
            ],
            &rows
        )
    );
    println!(
        "\nThe oracle row reacts at the injection instant (Td = 0); every \
         detector row pays a Td set by its heartbeat period and declare \
         timeout before the same re-planning path runs."
    );
}

/// Predictor evaluation: the Bundle's predictive machinery (QBETS-style
/// quantile bound, exponential smoothing, conservative queue replay)
/// scored against realized pilot waits on a saturated machine.
fn ablation_predictor(opts: &Options) {
    use aimes_bundle::{ExpSmoothing, QuantileBound, WaitPredictor};
    use aimes_cluster::{Cluster, JobRequest};
    use aimes_sim::{Simulation, Tracer};
    use std::cell::RefCell;
    use std::rc::Rc;
    println!("## Ablation — queue-wait predictors vs realized waits\n");
    let spec = aimes_cluster::testbed_resource("stampede").expect("in testbed");
    let mut sim = Simulation::with_tracer(opts.seed, Tracer::disabled());
    let cluster = Cluster::new(spec.config);
    cluster.install(&mut sim);

    // Probe: a 256-core, 2-hour pilot-shaped job every ~2 h over 8 days —
    // big enough that it cannot always slip into a backfill hole.
    let probes = if opts.quick { 24 } else { 96 };
    let cores = 256u32;
    let walltime = aimes_sim::SimDuration::from_hours(2.0);
    type Obs = (Option<f64>, Option<f64>, Option<f64>, f64); // qbets, smooth, replay, realized
    let observations: Rc<RefCell<Vec<Obs>>> = Rc::new(RefCell::new(vec![]));
    let qbets = Rc::new(RefCell::new(QuantileBound::qbets_default()));
    let smooth = Rc::new(RefCell::new(ExpSmoothing::new(0.3)));
    let mut rng = sim.fork_rng("probe-times");
    for k in 0..probes {
        let at = SimTime::from_secs((k as f64 * 2.0 + rng.uniform(0.0, 1.0)) * 3600.0);
        let cluster2 = cluster.clone();
        let obs = observations.clone();
        let qb = qbets.clone();
        let sm = smooth.clone();
        sim.schedule_at(at, move |sim| {
            let predicted_q = qb.borrow().predict().map(|d| d.as_secs());
            let predicted_s = sm.borrow().predict().map(|d| d.as_secs());
            let predicted_r = cluster2
                .estimate_wait(sim.now(), cores, walltime)
                .map(|d| d.as_secs());
            let id = cluster2.submit(sim, JobRequest::pilot(cores, walltime, "probe"));
            let cluster3 = cluster2.clone();
            let submit_time = sim.now();
            cluster2.watch(id, move |sim, state| {
                if state == aimes_cluster::JobState::Running {
                    let realized = sim.now().since(submit_time);
                    obs.borrow_mut().push((
                        predicted_q,
                        predicted_s,
                        predicted_r,
                        realized.as_secs(),
                    ));
                    qb.borrow_mut().observe(realized);
                    sm.borrow_mut().observe(realized);
                    let _ = &cluster3;
                }
            });
        });
    }
    sim.run_until(SimTime::from_secs(10.0 * 24.0 * 3600.0));

    let obs = observations.borrow();
    let score = |name: &str, pick: &dyn Fn(&Obs) -> Option<f64>, bound: bool| -> Vec<String> {
        let pairs: Vec<(f64, f64)> = obs
            .iter()
            .filter_map(|o| pick(o).map(|p| (p, o.3)))
            .collect();
        if pairs.is_empty() {
            return vec![name.into(), "-".into(), "-".into(), "-".into(), "0".into()];
        }
        let n = pairs.len() as f64;
        let mae = pairs.iter().map(|(p, r)| (p - r).abs()).sum::<f64>() / n;
        let bias = pairs.iter().map(|(p, r)| p - r).sum::<f64>() / n;
        let coverage = pairs.iter().filter(|(p, r)| r <= p).count() as f64 / n;
        vec![
            name.into(),
            format!("{mae:.0}"),
            format!("{bias:+.0}"),
            if bound {
                format!("{:.0} %", coverage * 100.0)
            } else {
                "-".into()
            },
            pairs.len().to_string(),
        ]
    };
    let rows = vec![
        score("qbets-95/95", &|o: &Obs| o.0, true),
        score("exp-smoothing", &|o: &Obs| o.1, false),
        score("queue-replay", &|o: &Obs| o.2, true),
    ];
    println!(
        "{}",
        report::markdown_table(
            &[
                "Predictor",
                "MAE(s)",
                "bias(s)",
                "coverage (bound)",
                "probes"
            ],
            &rows
        )
    );
    println!(
        "(realized waits: n = {}, mean = {:.0} s, max = {:.0} s)\n",
        obs.len(),
        obs.iter().map(|o| o.3).sum::<f64>() / obs.len().max(1) as f64,
        obs.iter().map(|o| o.3).fold(0.0, f64::max)
    );
}

/// One instrumented experiment-1 run (early binding, 15-min tasks) at the
/// given seed: prints the metrics summary block and, when requested,
/// writes the Perfetto-loadable Chrome trace, the metrics JSON/CSV, and
/// the full event trace.
fn telemetry_run(opts: &Options) {
    use aimes_sim::{Telemetry, Tracer};
    use std::io::Write as _;

    let n_tasks = if opts.quick { 16 } else { 64 };
    let app = aimes_skeleton::paper_bag(n_tasks, TaskDurationSpec::Uniform15Min);
    let telemetry = Telemetry::new();
    let tracer = Tracer::new();
    let mut rng = SimRng::new(opts.seed).fork("submit");
    let submit_at = SimTime::from_secs(rng.uniform(4.0, 16.0) * 3600.0);
    let result = run_application(
        &paper::testbed(),
        &app,
        &paper::early_strategy(),
        &RunOptions {
            seed: opts.seed,
            submit_at,
            telemetry: Some(telemetry.clone()),
            tracer: Some(tracer.clone()),
            ..Default::default()
        },
    )
    .expect("telemetry run completes");

    println!(
        "## Telemetry — experiment 1 ({n_tasks} tasks, seed {})\n",
        opts.seed
    );
    println!(
        "TTC {:.0} s, units {}/{}, charged {:.1} core-h, used {:.1} core-h\n",
        result.breakdown.ttc.as_secs(),
        result.units_done,
        result.n_tasks,
        result.charged_core_hours,
        result.used_core_hours
    );
    let summary = result.metrics.as_ref().expect("telemetry was attached");
    println!("{}", report::metrics_table(summary));

    if let Some(dir) = &opts.emit_metrics {
        std::fs::create_dir_all(dir).expect("create --emit-metrics dir");
        let file = |name: &str| {
            std::io::BufWriter::new(
                std::fs::File::create(dir.join(name)).expect("create metrics file"),
            )
        };
        let mut trace = file("trace.json");
        telemetry
            .write_chrome_trace(&mut trace)
            .expect("write trace.json");
        let mut csv = file("metrics.csv");
        telemetry
            .write_metrics_csv(&mut csv)
            .expect("write metrics.csv");
        let mut json = file("metrics.json");
        json.write_all(
            serde_json::to_string_pretty(summary)
                .expect("summary serializes")
                .as_bytes(),
        )
        .expect("write metrics.json");
        eprintln!(
            "wrote trace.json, metrics.json, metrics.csv to {}",
            dir.display()
        );
    }
    if let Some(path) = &opts.trace_out {
        let mut out =
            std::io::BufWriter::new(std::fs::File::create(path).expect("create --trace-out file"));
        tracer.write_json(&mut out).expect("stream event trace");
        eprintln!("wrote event trace to {}", path.display());
    }
}

/// Run one named scenario and write (or print) its journal JSONL.
fn journal_cmd(opts: &Options) {
    if !aimes_bench::scenarios::NAMES.contains(&opts.scenario.as_str()) {
        eprintln!(
            "unknown --scenario {:?}; known: {:?}",
            opts.scenario,
            aimes_bench::scenarios::NAMES
        );
        std::process::exit(2);
    }
    eprintln!(
        "running scenario {} at seed {} ...",
        opts.scenario, opts.seed
    );
    let journal = aimes_bench::scenarios::journal(&opts.scenario, opts.seed);
    let jsonl = journal.to_jsonl();
    match &opts.out {
        Some(path) => {
            std::fs::write(path, &jsonl).expect("write journal file");
            eprintln!("wrote {} entries to {}", journal.len(), path.display());
        }
        None => print!("{jsonl}"),
    }
}

/// Post-mortem analysis of one journal file. Exits nonzero when the TTC
/// closure check fails (or cannot run because the journal never finished).
fn analyze_cmd(opts: &Options) {
    let [path] = opts.files.as_slice() else {
        eprintln!("usage: experiments analyze <journal.jsonl> [--epsilon E] [--out report.json]");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).expect("read journal file");
    let report = match aimes_analytics::analyze_jsonl(&text, opts.epsilon) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("cannot analyze {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    println!("{}", aimes_analytics::render::render(&report));
    if let Some(out) = &opts.out {
        std::fs::write(
            out,
            serde_json::to_string_pretty(&report).expect("report serializes"),
        )
        .expect("write analysis file");
        eprintln!("wrote analysis to {}", out.display());
    }
    if !report.closure_holds() {
        eprintln!("TTC closure FAILED — the state model and the reported TTC disagree");
        std::process::exit(1);
    }
}

/// Load an `analyze --out` JSON, or fall back to treating the file as a
/// journal and analyzing it on the spot.
fn load_analysis(path: &std::path::Path, epsilon: f64) -> aimes_analytics::AnalysisReport {
    let text = std::fs::read_to_string(path).expect("read analysis/journal file");
    if let Ok(report) = serde_json::from_str::<aimes_analytics::AnalysisReport>(&text) {
        if report.schema == aimes_analytics::SCHEMA {
            return report;
        }
    }
    match aimes_analytics::analyze_jsonl(&text, epsilon) {
        Ok(r) => r,
        Err(e) => {
            eprintln!(
                "{} is neither an analysis JSON nor a readable journal: {e}",
                path.display()
            );
            std::process::exit(2);
        }
    }
}

/// Compare two runs component-by-component; exit nonzero on regression.
fn analytics_diff_cmd(opts: &Options) {
    let [a, b] = opts.files.as_slice() else {
        eprintln!(
            "usage: experiments analytics-diff <run-a> <run-b> [--threshold T]\n\
             (inputs: analyze --out JSON files or raw journal JSONL)"
        );
        std::process::exit(2);
    };
    let ra = load_analysis(a, opts.epsilon);
    let rb = load_analysis(b, opts.epsilon);
    let d = aimes_analytics::diff::diff(&ra, &rb, opts.threshold);
    println!("{}", aimes_analytics::render::render_diff(&d));
    if d.is_regression() {
        std::process::exit(1);
    }
}

/// Cross-run analysis of one `--campaign-out` manifest: per-arm TTC
/// percentiles, Tukey-fence straggler runs (same fence as the per-unit
/// analytics), a failure table keyed by the `RunError` taxonomy, and — in
/// timing mode — the pool-utilization section. Exits 2 on a malformed
/// manifest.
fn campaign_report_cmd(opts: &Options) {
    let [path] = opts.files.as_slice() else {
        eprintln!("usage: experiments campaign-report <campaign.jsonl>");
        std::process::exit(2);
    };
    let text = std::fs::read_to_string(path).expect("read campaign manifest");
    let manifest = match aimes::campaign::read_manifest(&text) {
        Ok(m) => m,
        Err(e) => {
            eprintln!("cannot read {}: {e}", path.display());
            std::process::exit(2);
        }
    };
    if let Err(e) = manifest.validate() {
        eprintln!("malformed manifest {}: {e}", path.display());
        std::process::exit(2);
    }
    let meta = &manifest.meta;
    println!(
        "## Campaign report — {} (seed {}, {} runs)\n",
        meta.command, meta.seed, meta.total_jobs
    );

    // Arms in first-seen job order, so the report matches the sweep's
    // own table ordering.
    let mut arms: Vec<&str> = Vec::new();
    for rec in &manifest.runs {
        if !arms.iter().any(|a| *a == rec.arm) {
            arms.push(&rec.arm);
        }
    }
    let arm_runs = |arm: &str| -> Vec<&aimes::RunRecord> {
        manifest.runs.iter().filter(|r| r.arm == arm).collect()
    };

    println!("### TTC percentiles by arm\n");
    println!("| arm | runs | completed | p50 TTC (s) | p95 (s) | p99 (s) |");
    println!("|---|---|---|---|---|---|");
    for arm in &arms {
        let runs = arm_runs(arm);
        let ttcs: Vec<f64> = runs.iter().filter_map(|r| r.ttc_secs).collect();
        match aimes::stats::p50_p95_p99(&ttcs) {
            Some((p50, p95, p99)) => println!(
                "| {arm} | {} | {} | {p50:.1} | {p95:.1} | {p99:.1} |",
                runs.len(),
                ttcs.len()
            ),
            None => println!("| {arm} | {} | 0 | - | - | - |", runs.len()),
        }
    }

    // Straggler *runs*: within each arm, completed runs whose TTC clears
    // the same Tukey upper fence the per-unit analytics use.
    println!("\n### Straggler runs (Tukey fence per arm)\n");
    let mut stragglers: Vec<(&aimes::RunRecord, f64)> = Vec::new();
    for arm in &arms {
        let ttcs: Vec<f64> = arm_runs(arm).iter().filter_map(|r| r.ttc_secs).collect();
        let Some(bound) = aimes_analytics::tukey_upper_fence(&ttcs) else {
            continue;
        };
        for rec in arm_runs(arm) {
            if let Some(ttc) = rec.ttc_secs {
                if ttc > bound + 1e-9 {
                    stragglers.push((rec, bound));
                }
            }
        }
    }
    // Worst excess first; job index breaks ties deterministically.
    stragglers.sort_by(|(a, ba), (b, bb)| {
        let ea = a.ttc_secs.unwrap_or(0.0) - ba;
        let eb = b.ttc_secs.unwrap_or(0.0) - bb;
        eb.partial_cmp(&ea)
            .expect("finite TTCs")
            .then(a.job.cmp(&b.job))
    });
    if stragglers.is_empty() {
        println!("none — no completed run exceeds its arm's fence");
    } else {
        println!("| arm | job | rep | seed | TTC (s) | fence (s) |");
        println!("|---|---|---|---|---|---|");
        for (rec, bound) in &stragglers {
            println!(
                "| {} | {} | {} | {} | {:.1} | {bound:.1} |",
                rec.arm,
                rec.job,
                rec.rep,
                rec.seed,
                rec.ttc_secs.expect("stragglers completed"),
            );
        }
    }

    // Failure table keyed by the RunError taxonomy.
    println!("\n### Failures\n");
    let failed: Vec<&aimes::RunRecord> = manifest.runs.iter().filter(|r| r.is_failed()).collect();
    if failed.is_empty() {
        println!("none — every run completed");
    } else {
        let mut kinds: Vec<&str> = Vec::new();
        for rec in &failed {
            let kind = rec.error_kind.as_deref().unwrap_or("unknown");
            if !kinds.contains(&kind) {
                kinds.push(kind);
            }
        }
        println!("| error kind | count | arms |");
        println!("|---|---|---|");
        for kind in kinds {
            let of_kind: Vec<&&aimes::RunRecord> = failed
                .iter()
                .filter(|r| r.error_kind.as_deref().unwrap_or("unknown") == kind)
                .collect();
            let mut in_arms: Vec<&str> = Vec::new();
            for rec in &of_kind {
                if !in_arms.iter().any(|a| *a == rec.arm) {
                    in_arms.push(&rec.arm);
                }
            }
            println!("| {kind} | {} | {} |", of_kind.len(), in_arms.join(", "));
        }
    }

    // Pool utilization, present only in timing-mode manifests.
    if let Some(pool) = &manifest.pool {
        println!("\n### Pool utilization\n");
        println!(
            "invocations: {} | wall: {:.2} s | busy: {:.2} s | \
             utilization: {:.0}% | cursor overshoots: {}\n",
            pool.invocations,
            pool.wall_secs,
            pool.busy_secs,
            100.0 * pool.utilization,
            pool.cursor_overshoots
        );
        println!("| worker | items | busy (s) | idle (s) | busy fraction |");
        println!("|---|---|---|---|---|");
        for w in &pool.workers {
            println!(
                "| {} | {} | {:.2} | {:.2} | {:.0}% |",
                w.worker,
                w.items,
                w.busy_secs,
                w.idle_secs,
                100.0 * w.busy_fraction
            );
        }
    } else {
        println!(
            "\n(no pool record — rerun the sweep with --campaign-timing for pool utilization)"
        );
    }
}

/// The engine self-profile: sequential experiment-1 runs under one
/// shared profiler, with one outer `harness` scope around the whole
/// loop. Because the harness is single-threaded and every subsystem
/// scope nests inside `harness`, per-label exclusive times tile the
/// measured wall clock — the printed coverage sits near 100% (the CI
/// profile-smoke gate asserts within 5%). The `aimes-profile-v1`
/// document (with the volatile timing and allocator sections always
/// present — this command exists to measure them) goes to
/// `--profile-out`/`--out`, or into the stdout report.
fn profile_cmd(opts: &Options) {
    let n_tasks = if opts.quick { 64 } else { 256 };
    let cfg = paper::experiment(1, opts.reps, opts.seed, Some(vec![n_tasks]));
    println!(
        "## Engine self-profile — experiment 1 ({n_tasks} tasks x {} reps, sequential)\n",
        cfg.repetitions
    );
    let prof = Profiler::new();
    let alloc_before = heap::snapshot();
    let mut run_walls: Vec<f64> = Vec::new();
    let mut engine = EngineStats::default();
    let wall_started = std::time::Instant::now();
    {
        let _harness = prof.scope("harness");
        for n in &cfg.task_counts {
            for rep in 0..cfg.repetitions {
                let seed = cfg.run_seed(*n, rep);
                let submit_at = cfg.submit_instant(seed);
                let t_run = std::time::Instant::now();
                run_application(
                    &cfg.resources,
                    &cfg.skeleton(*n),
                    &cfg.strategy,
                    &RunOptions {
                        seed,
                        submit_at,
                        profiler: Some(prof.clone()),
                        ..Default::default()
                    },
                )
                .unwrap_or_else(|e| panic!("profile run failed: {e}"));
                run_walls.push(t_run.elapsed().as_secs_f64());
                // The engine handle overwrites its counters at each run's
                // exit; fold them here so the document sums every run.
                engine.merge(&prof.report().engine);
            }
        }
    }
    let total_wall = wall_started.elapsed().as_secs_f64();
    let mut report = prof.report();
    report.engine = engine;
    let delta = heap::snapshot().since(&alloc_before);
    let events = engine.events_processed;
    let alloc = AllocSection {
        allocs: delta.allocs,
        bytes_allocated: delta.bytes_allocated,
        peak_bytes: delta.peak_bytes,
        allocs_per_event: if events > 0 {
            delta.allocs as f64 / events as f64
        } else {
            0.0
        },
    };
    let doc = ProfileDoc::build(
        "profile",
        opts.seed,
        run_walls.len() as u64,
        &report,
        Some(TimingInputs {
            total_wall_secs: total_wall,
            sequential: true,
            run_walls,
            alloc: Some(alloc),
        }),
    );
    if let Err(e) = doc.validate() {
        eprintln!("internal error: produced invalid profile doc: {e}");
        std::process::exit(2);
    }
    println!("```\n{}```\n", profile::self_time_table(&report, 16));
    let coverage = doc.timing.as_ref().and_then(|t| t.coverage).unwrap_or(0.0);
    println!(
        "wall {total_wall:.3} s | attributed {:.3} s | coverage {:.1}% | \
         {events} events | {:.1} allocs/event",
        report.attributed_secs(),
        100.0 * coverage,
        alloc.allocs_per_event
    );
    let json = serde_json::to_string_pretty(&doc).expect("profile doc serializes");
    match opts.profile_out.as_ref().or(opts.out.as_ref()) {
        Some(path) => {
            if let Err(e) = std::fs::write(path, format!("{json}\n")) {
                eprintln!("cannot write profile doc {}: {e}", path.display());
                std::process::exit(2);
            }
            eprintln!("wrote profile doc {}", path.display());
        }
        None => println!("\n### JSON\n```json\n{json}\n```"),
    }
}

fn main() {
    let (command, opts) = parse_args();
    if let Some(jobs) = opts.jobs {
        rayon::ThreadPoolBuilder::new()
            .num_threads(jobs)
            .build_global()
            .expect("configure worker pool");
    }
    match command.as_str() {
        "table1" => table1(),
        "fig2" => fig2(&opts),
        "fig3" => fig3(&opts),
        "fig4" => fig4(&opts),
        "ablation-pilots" => ablation_pilots(&opts),
        "ablation-sched" => ablation_sched(&opts),
        "ablation-select" => ablation_select(&opts),
        "ablation-data" => ablation_data(&opts),
        "ablation-crossover" => ablation_crossover(&opts),
        "ablation-throughput" => ablation_throughput(&opts),
        "ablation-hetero" => ablation_hetero(&opts),
        "ablation-adaptive" => ablation_adaptive(&opts),
        "ablation-walltime" => ablation_walltime(&opts),
        "ablation-queue" => ablation_queue(&opts),
        "ablation-predictor" => ablation_predictor(&opts),
        "ablation-faults" => ablation_faults(&opts),
        "ablation-detection" => ablation_detection(&opts),
        "ablation-info" => ablation_info(&opts),
        "ablation-cascade" => ablation_cascade(&opts),
        "telemetry" => telemetry_run(&opts),
        "profile" => profile_cmd(&opts),
        "journal" => journal_cmd(&opts),
        "analyze" => analyze_cmd(&opts),
        "analytics-diff" => analytics_diff_cmd(&opts),
        "campaign-report" => campaign_report_cmd(&opts),
        "all" => {
            table1();
            // Run experiments 1-4 once and render both figures from them.
            let results = experiments_1_to_4(&opts);
            let refs: Vec<&ExperimentResult> = results.iter().collect();
            println!("## Figure 2 — TTC comparison, experiments 1-4\n");
            println!("{}", report::fig2_table(&refs));
            println!("```\n{}```\n", report::fig2_chart(&refs));
            println!("## Figure 3 — TTC decomposition per experiment\n");
            for (panel, r) in ["(a)", "(b)", "(c)", "(d)"].iter().zip(&results) {
                println!("### {panel} {}", report::fig3_table(r));
            }
            println!("## Figure 4 — TTC error bars\n");
            println!("### (a) {}", report::fig4_table(&results[0]));
            println!("### (b) {}", report::fig4_table(&results[2]));
            println!("### CSV\n```\n{}```", report::csv_export(&refs));
            ablation_pilots(&opts);
            ablation_sched(&opts);
            ablation_select(&opts);
            ablation_data(&opts);
            ablation_crossover(&opts);
            ablation_throughput(&opts);
            ablation_hetero(&opts);
            ablation_adaptive(&opts);
            ablation_walltime(&opts);
            ablation_queue(&opts);
            ablation_predictor(&opts);
            ablation_faults(&opts);
            ablation_detection(&opts);
            ablation_info(&opts);
            ablation_cascade(&opts);
        }
        _ => {
            println!(
                "commands: table1 | fig2 | fig3 | fig4 | ablation-pilots | \
                 ablation-sched | ablation-select | ablation-data | \
                 ablation-crossover | ablation-throughput | ablation-hetero | \n\
                 ablation-adaptive | ablation-walltime | ablation-queue | \n\
                 ablation-predictor | ablation-faults | ablation-detection | \n\
                 ablation-info | ablation-cascade | telemetry | profile | journal | analyze | \n\
                 analytics-diff | campaign-report | all\n\
                 flags: --reps N --seed S --quick --jobs N --fail-on-error \
                 --emit-metrics DIR --trace-out PATH --dump-dir DIR\n\
                 campaign flags: --campaign-out PATH --campaign-timing --progress \
                 --profile-out PATH\n\
                 journal flags: --scenario exp1|exp4|faulty --out PATH\n\
                 analyze: <journal.jsonl> --epsilon E --out report.json\n\
                 analytics-diff: <run-a> <run-b> --threshold T\n\
                 campaign-report: <campaign.jsonl>"
            );
        }
    }
}

// The paper-sizes helper is exercised by `fig2` by default; keep the
// import used in all configurations.
#[allow(unused_imports)]
use paper_task_counts as _paper_sizes;
#[allow(unused_imports)]
use ExecutionStrategy as _Strategy;
#[allow(unused_imports)]
use TaskDurationSpec as _Spec;
