//! # aimes-bench — experiment regeneration and micro-benchmarks
//!
//! The `experiments` binary regenerates every table and figure of the
//! paper's evaluation section (see `cargo run -p aimes-bench --release
//! --bin experiments -- help`); the Criterion benches measure the
//! simulation substrate itself (event engine, batch scheduler, end-to-end
//! middleware runs).

/// Default repetitions per (experiment, size) point for figure-quality
/// output. The paper ran "more than 20,000 runs" over a year; eight
/// repetitions per point keep the regeneration under a few minutes while
/// giving stable means and visible error bars.
pub const DEFAULT_REPETITIONS: usize = 8;

/// Reduced sizes for quick shape checks.
pub fn quick_sizes() -> Vec<u32> {
    vec![8, 64, 512]
}
