//! # aimes-bench — experiment regeneration and micro-benchmarks
//!
//! The `experiments` binary regenerates every table and figure of the
//! paper's evaluation section (see `cargo run -p aimes-bench --release
//! --bin experiments -- help`); the Criterion benches measure the
//! simulation substrate itself (event engine, batch scheduler, end-to-end
//! middleware runs).

/// Default repetitions per (experiment, size) point for figure-quality
/// output. The paper ran "more than 20,000 runs" over a year; eight
/// repetitions per point keep the regeneration under a few minutes while
/// giving stable means and visible error bars.
pub const DEFAULT_REPETITIONS: usize = 8;

/// Reduced sizes for quick shape checks.
pub fn quick_sizes() -> Vec<u32> {
    vec![8, 64, 512]
}

pub mod scenarios {
    //! Named journal-producing scenarios shared by the `experiments`
    //! CLI (`journal`, `analyze`) and the analytics CI gates. The shapes
    //! mirror the golden-journal suite: the paper's experiment 1 and 4
    //! plus one detected-fault recovery run.

    use aimes::journal::RunJournal;
    use aimes::middleware::{run_application, RunOptions};
    use aimes::paper;
    use aimes_cluster::ClusterConfig;
    use aimes_fault::{FaultSpec, OutageKind, OutageSpec, RecoveryPolicy};
    use aimes_sim::SimTime;
    use aimes_skeleton::{paper_bag, TaskDurationSpec};
    use aimes_strategy::{ExecutionStrategy, ResourceSelection};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// The scenario names `journal --scenario` accepts.
    pub const NAMES: [&str; 3] = ["exp1", "exp4", "faulty"];

    fn pool() -> Vec<ClusterConfig> {
        vec![
            ClusterConfig::test("one", 256),
            ClusterConfig::test("two", 256),
            ClusterConfig::test("three", 512),
        ]
    }

    fn run(
        strategy: &ExecutionStrategy,
        spec: TaskDurationSpec,
        n_tasks: u32,
        seed: u64,
        faults: Option<FaultSpec>,
        recovery: Option<RecoveryPolicy>,
    ) -> RunJournal {
        let app = paper_bag(n_tasks, spec);
        let journal = Rc::new(RefCell::new(RunJournal::new()));
        let options = RunOptions {
            seed,
            submit_at: SimTime::from_secs(600.0),
            faults,
            recovery,
            journal: Some(Rc::clone(&journal)),
            ..Default::default()
        };
        run_application(&pool(), &app, strategy, &options).expect("scenario run completes");
        let out = journal.borrow().clone();
        out
    }

    /// Run one named scenario at `seed` and return its journal.
    /// Panics on an unknown name; the caller validates against [`NAMES`].
    pub fn journal(name: &str, seed: u64) -> RunJournal {
        match name {
            // Experiment-1 shape: constant 15-minute tasks, early binding.
            "exp1" => run(
                &paper::early_strategy(),
                TaskDurationSpec::Uniform15Min,
                32,
                seed,
                None,
                None,
            ),
            // Experiment-4 shape: Gaussian durations, late binding over 3
            // pilots.
            "exp4" => run(
                &paper::late_strategy(3),
                TaskDurationSpec::Gaussian,
                32,
                seed,
                None,
                None,
            ),
            // Permanent outage on the pinned resource, detected (not
            // oracled) and recovered.
            "faulty" => {
                let mut strategy = paper::late_strategy(2);
                strategy.selection = ResourceSelection::Fixed(vec!["one".into()]);
                let faults = FaultSpec {
                    outages: vec![OutageSpec {
                        resource: "one".into(),
                        at_secs: 300.0,
                        duration_secs: 600.0,
                        kind: OutageKind::Permanent,
                    }],
                    ..FaultSpec::none()
                };
                run(
                    &strategy,
                    TaskDurationSpec::Uniform15Min,
                    16,
                    seed,
                    Some(faults),
                    Some(RecoveryPolicy::with_detection()),
                )
            }
            other => panic!("unknown scenario {other:?}; known: {NAMES:?}"),
        }
    }
}
