//! # aimes-bench — experiment regeneration and micro-benchmarks
//!
//! The `experiments` binary regenerates every table and figure of the
//! paper's evaluation section (see `cargo run -p aimes-bench --release
//! --bin experiments -- help`); the Criterion benches measure the
//! simulation substrate itself (event engine, batch scheduler, end-to-end
//! middleware runs).

/// Default repetitions per (experiment, size) point for figure-quality
/// output. The paper ran "more than 20,000 runs" over a year; eight
/// repetitions per point keep the regeneration under a few minutes while
/// giving stable means and visible error bars.
pub const DEFAULT_REPETITIONS: usize = 8;

/// Reduced sizes for quick shape checks.
pub fn quick_sizes() -> Vec<u32> {
    vec![8, 64, 512]
}

pub mod alloc {
    //! Opt-in heap accounting: a counting [`GlobalAlloc`] shim.
    //!
    //! The bench binaries install this as their `#[global_allocator]`
    //! (opt-in per binary — the library and tests never pay for it) so
    //! perf reports can track allocation pressure and peak live heap
    //! alongside events/sec. Counters are relaxed atomics (~2 ns per
    //! allocation); the peak is maintained with an atomic max so it is
    //! correct under the parallel campaign pool.
    //!
    //! Caveats: counts are process-global (all threads and worker pools
    //! mix), and the peak never resets — per-region deltas come from
    //! [`snapshot`] pairs, but `peak_bytes` is monotone like VmHWM.

    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCS: AtomicU64 = AtomicU64::new(0);
    static BYTES_ALLOCATED: AtomicU64 = AtomicU64::new(0);
    static LIVE_BYTES: AtomicU64 = AtomicU64::new(0);
    static PEAK_BYTES: AtomicU64 = AtomicU64::new(0);

    /// Counting pass-through to the system allocator.
    pub struct CountingAlloc;

    fn on_alloc(size: u64) {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        BYTES_ALLOCATED.fetch_add(size, Ordering::Relaxed);
        let live = LIVE_BYTES.fetch_add(size, Ordering::Relaxed) + size;
        PEAK_BYTES.fetch_max(live, Ordering::Relaxed);
    }

    fn on_dealloc(size: u64) {
        LIVE_BYTES.fetch_sub(size, Ordering::Relaxed);
    }

    unsafe impl GlobalAlloc for CountingAlloc {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc(layout) };
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
            let p = unsafe { System.alloc_zeroed(layout) };
            if !p.is_null() {
                on_alloc(layout.size() as u64);
            }
            p
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            unsafe { System.dealloc(ptr, layout) };
            on_dealloc(layout.size() as u64);
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            let p = unsafe { System.realloc(ptr, layout, new_size) };
            if !p.is_null() {
                on_dealloc(layout.size() as u64);
                on_alloc(new_size as u64);
            }
            p
        }
    }

    /// Point-in-time reading of the allocator counters.
    #[derive(Clone, Copy, Debug, Default)]
    pub struct AllocSnapshot {
        /// Allocation calls since process start.
        pub allocs: u64,
        /// Bytes handed out since process start.
        pub bytes_allocated: u64,
        /// Currently live heap bytes.
        pub live_bytes: u64,
        /// Peak live heap bytes since process start (monotone).
        pub peak_bytes: u64,
    }

    impl AllocSnapshot {
        /// Counter growth since `earlier` (peak stays absolute).
        pub fn since(&self, earlier: &AllocSnapshot) -> AllocSnapshot {
            AllocSnapshot {
                allocs: self.allocs.saturating_sub(earlier.allocs),
                bytes_allocated: self.bytes_allocated.saturating_sub(earlier.bytes_allocated),
                live_bytes: self.live_bytes,
                peak_bytes: self.peak_bytes,
            }
        }
    }

    /// Read the counters. All zeros unless a binary installed
    /// [`CountingAlloc`] as its global allocator.
    pub fn snapshot() -> AllocSnapshot {
        AllocSnapshot {
            allocs: ALLOCS.load(Ordering::Relaxed),
            bytes_allocated: BYTES_ALLOCATED.load(Ordering::Relaxed),
            live_bytes: LIVE_BYTES.load(Ordering::Relaxed),
            peak_bytes: PEAK_BYTES.load(Ordering::Relaxed),
        }
    }

    /// True when the shim has observed at least one allocation — i.e.
    /// the running binary actually installed it.
    pub fn is_active() -> bool {
        ALLOCS.load(Ordering::Relaxed) > 0
    }
}

pub mod scenarios {
    //! Named journal-producing scenarios shared by the `experiments`
    //! CLI (`journal`, `analyze`) and the analytics CI gates. The shapes
    //! mirror the golden-journal suite: the paper's experiment 1 and 4
    //! plus one detected-fault recovery run.

    use aimes::journal::RunJournal;
    use aimes::middleware::{run_application, RunOptions};
    use aimes::paper;
    use aimes_cluster::ClusterConfig;
    use aimes_fault::{FaultSpec, OutageKind, OutageSpec, RecoveryPolicy};
    use aimes_sim::SimTime;
    use aimes_skeleton::{paper_bag, TaskDurationSpec};
    use aimes_strategy::{ExecutionStrategy, ResourceSelection};
    use std::cell::RefCell;
    use std::rc::Rc;

    /// The scenario names `journal --scenario` accepts.
    pub const NAMES: [&str; 3] = ["exp1", "exp4", "faulty"];

    fn pool() -> Vec<ClusterConfig> {
        vec![
            ClusterConfig::test("one", 256),
            ClusterConfig::test("two", 256),
            ClusterConfig::test("three", 512),
        ]
    }

    fn run(
        strategy: &ExecutionStrategy,
        spec: TaskDurationSpec,
        n_tasks: u32,
        seed: u64,
        faults: Option<FaultSpec>,
        recovery: Option<RecoveryPolicy>,
    ) -> RunJournal {
        let app = paper_bag(n_tasks, spec);
        let journal = Rc::new(RefCell::new(RunJournal::new()));
        let options = RunOptions {
            seed,
            submit_at: SimTime::from_secs(600.0),
            faults,
            recovery,
            journal: Some(Rc::clone(&journal)),
            ..Default::default()
        };
        run_application(&pool(), &app, strategy, &options).expect("scenario run completes");
        let out = journal.borrow().clone();
        out
    }

    /// Run one named scenario at `seed` and return its journal.
    /// Panics on an unknown name; the caller validates against [`NAMES`].
    pub fn journal(name: &str, seed: u64) -> RunJournal {
        match name {
            // Experiment-1 shape: constant 15-minute tasks, early binding.
            "exp1" => run(
                &paper::early_strategy(),
                TaskDurationSpec::Uniform15Min,
                32,
                seed,
                None,
                None,
            ),
            // Experiment-4 shape: Gaussian durations, late binding over 3
            // pilots.
            "exp4" => run(
                &paper::late_strategy(3),
                TaskDurationSpec::Gaussian,
                32,
                seed,
                None,
                None,
            ),
            // Permanent outage on the pinned resource, detected (not
            // oracled) and recovered.
            "faulty" => {
                let mut strategy = paper::late_strategy(2);
                strategy.selection = ResourceSelection::Fixed(vec!["one".into()]);
                let faults = FaultSpec {
                    outages: vec![OutageSpec {
                        resource: "one".into(),
                        at_secs: 300.0,
                        duration_secs: 600.0,
                        kind: OutageKind::Permanent,
                    }],
                    ..FaultSpec::none()
                };
                run(
                    &strategy,
                    TaskDurationSpec::Uniform15Min,
                    16,
                    seed,
                    Some(faults),
                    Some(RecoveryPolicy::with_detection()),
                )
            }
            other => panic!("unknown scenario {other:?}; known: {NAMES:?}"),
        }
    }
}
