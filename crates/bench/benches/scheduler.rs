//! Benchmarks of the batch-scheduling substrate: EASY backfill passes,
//! availability-profile queries, and a full simulated cluster-day.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use aimes_cluster::policy::{select_starts, QueuedJobView, RunningJobView};
use aimes_cluster::{AvailabilityProfile, Cluster, ClusterConfig, JobId, SchedulingPolicy};
use aimes_sim::{SimDuration, SimRng, SimTime, Simulation, Tracer};
use aimes_workload::WorkloadConfig;

fn mk_state(
    rng: &mut SimRng,
    n_running: usize,
    n_queued: usize,
) -> (Vec<RunningJobView>, Vec<QueuedJobView>) {
    let running = (0..n_running)
        .map(|_| RunningJobView {
            cores: rng.below(64) as u32 + 1,
            deadline: SimTime::from_secs(rng.uniform(10.0, 1e5)),
        })
        .collect();
    let queued = (0..n_queued)
        .map(|i| QueuedJobView {
            id: JobId(i as u64),
            cores: rng.below(64) as u32 + 1,
            walltime: SimDuration::from_secs(rng.uniform(60.0, 4.0 * 3600.0)),
        })
        .collect();
    (running, queued)
}

fn bench_backfill_pass(c: &mut Criterion) {
    let mut group = c.benchmark_group("backfill_pass");
    for depth in [32usize, 256, 1024] {
        let mut rng = SimRng::new(11);
        let (running, queued) = mk_state(&mut rng, 128, depth);
        group.bench_with_input(BenchmarkId::new("queue_depth", depth), &depth, |b, _| {
            b.iter(|| {
                black_box(select_starts(
                    SchedulingPolicy::EasyBackfill,
                    SimTime::from_secs(5.0),
                    black_box(100),
                    &running,
                    &queued,
                ))
            })
        });
    }
    group.finish();
}

fn bench_profile_earliest_fit(c: &mut Criterion) {
    let mut rng = SimRng::new(5);
    let releases: Vec<(SimTime, u32)> = (0..512)
        .map(|_| {
            (
                SimTime::from_secs(rng.uniform(1.0, 1e5)),
                rng.below(32) as u32 + 1,
            )
        })
        .collect();
    let profile = AvailabilityProfile::new(SimTime::ZERO, 64, &releases);
    c.bench_function("profile/earliest_fit_512_breakpoints", |b| {
        b.iter(|| {
            black_box(profile.earliest_fit(
                black_box(1024),
                SimDuration::from_secs(3600.0),
                SimTime::ZERO,
            ))
        })
    });
}

fn bench_cluster_day(c: &mut Criterion) {
    // One simulated day of a 4096-core production machine with
    // background load: the workhorse unit of every experiment run.
    c.bench_function("cluster/simulated_day_4096_cores", |b| {
        b.iter(|| {
            let mut cfg = ClusterConfig::test("bench", 4096);
            cfg.workload = Some(WorkloadConfig::production_like());
            cfg.initial_backlog_factor = 0.5;
            let mut sim = Simulation::with_tracer(9, Tracer::disabled());
            let cluster = Cluster::new(cfg);
            cluster.install(&mut sim);
            sim.run_until(SimTime::from_secs(86_400.0));
            black_box(cluster.metrics(sim.now()).utilization)
        })
    });
}

criterion_group!(
    benches,
    bench_backfill_pass,
    bench_profile_earliest_fit,
    bench_cluster_day
);
criterion_main!(benches);
