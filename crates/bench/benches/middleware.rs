//! End-to-end middleware benchmarks: full application runs on the
//! testbed (the per-run cost that bounds experiment regeneration time)
//! and skeleton generation at the largest paper size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use aimes::middleware::{run_application, RunOptions};
use aimes::paper;
use aimes_sim::{SimRng, SimTime};
use aimes_skeleton::{paper_bag, SkeletonApp, TaskDurationSpec};

fn bench_full_run(c: &mut Criterion) {
    let mut group = c.benchmark_group("full_run");
    group.sample_size(10);
    for (label, strategy) in [
        ("early_1p", paper::early_strategy()),
        ("late_3p", paper::late_strategy(3)),
    ] {
        for n_tasks in [64u32, 512] {
            let app = paper_bag(n_tasks, TaskDurationSpec::Uniform15Min);
            group.bench_with_input(BenchmarkId::new(label, n_tasks), &n_tasks, |b, _| {
                b.iter(|| {
                    let r = run_application(
                        &paper::testbed(),
                        &app,
                        &strategy,
                        &RunOptions {
                            seed: 42,
                            submit_at: SimTime::from_secs(6.0 * 3600.0),
                            ..Default::default()
                        },
                    )
                    .expect("run completes");
                    black_box(r.breakdown.ttc)
                })
            });
        }
    }
    group.finish();
}

fn bench_skeleton_generation(c: &mut Criterion) {
    let cfg = paper_bag(2048, TaskDurationSpec::Gaussian);
    c.bench_function("skeleton/generate_2048_tasks", |b| {
        b.iter(|| {
            let app = SkeletonApp::generate(&cfg, &mut SimRng::new(1)).expect("valid");
            black_box(app.tasks().len())
        })
    });
}

criterion_group!(benches, bench_full_run, bench_skeleton_generation);
criterion_main!(benches);
