//! Micro-benchmarks of the simulation substrate: event queue, engine,
//! RNG, and distribution sampling.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

use aimes_sim::{EventQueue, SimDuration, SimRng, SimTime, Simulation, Tracer};
use aimes_workload::Distribution;

fn bench_event_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_queue");
    for n in [1_000usize, 100_000] {
        group.bench_with_input(BenchmarkId::new("schedule_pop", n), &n, |b, &n| {
            b.iter(|| {
                let mut q = EventQueue::new();
                let mut rng = SimRng::new(1);
                for i in 0..n {
                    q.schedule(SimTime::from_secs(rng.uniform(0.0, 1e6)), i);
                }
                let mut count = 0;
                while let Some(ev) = q.pop() {
                    count += black_box(ev.payload) & 1;
                }
                count
            })
        });
    }
    group.finish();
}

fn bench_engine_timer_cascade(c: &mut Criterion) {
    // 10k chained timers: the engine's per-event overhead.
    c.bench_function("engine/timer_cascade_10k", |b| {
        b.iter(|| {
            let mut sim = Simulation::with_tracer(1, Tracer::disabled());
            fn tick(sim: &mut Simulation, remaining: u32) {
                if remaining > 0 {
                    sim.schedule_in(SimDuration::from_secs(1.0), move |s| tick(s, remaining - 1));
                }
            }
            tick(&mut sim, 10_000);
            sim.run_to_completion();
            black_box(sim.events_processed())
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.bench_function("uniform01_x1k", |b| {
        let mut rng = SimRng::new(7);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..1000 {
                acc += rng.uniform01();
            }
            black_box(acc)
        })
    });
    group.bench_function("below_x1k", |b| {
        let mut rng = SimRng::new(7);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..1000 {
                acc ^= rng.below(1_000_003);
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_distributions(c: &mut Criterion) {
    let mut group = c.benchmark_group("distributions");
    let dists: Vec<(&str, Distribution)> = vec![
        (
            "truncated_gaussian",
            Distribution::truncated_gaussian(900.0, 300.0, 60.0, 1800.0),
        ),
        (
            "lognormal",
            Distribution::LogNormal {
                mu: 8.2,
                sigma: 1.4,
            },
        ),
        (
            "gamma",
            Distribution::Gamma {
                shape: 2.5,
                scale: 10.0,
            },
        ),
    ];
    for (name, dist) in dists {
        group.bench_function(format!("{name}_x1k"), |b| {
            let mut rng = SimRng::new(3);
            b.iter(|| {
                let mut acc = 0.0;
                for _ in 0..1000 {
                    acc += dist.sample(&mut rng);
                }
                black_box(acc)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_event_queue,
    bench_engine_timer_cascade,
    bench_rng,
    bench_distributions
);
criterion_main!(benches);
