//! # aimes-fault — deterministic fault injection and recovery policies
//!
//! The paper's execution strategies are evaluated on production machines
//! whose failure behaviour cannot be replayed. This crate makes failure a
//! first-class, *reproducible* experiment variable: a [`FaultSpec`]
//! describes what may go wrong, and compiling it against the run seed
//! yields a concrete [`FaultSchedule`] — the exact same outages, launch
//! failures, and unit faults on every replay with the same seed.
//!
//! Five fault classes are modelled, one per middleware layer:
//!
//! * **resource outages** (cluster layer) — a machine goes down for a
//!   window, killing the jobs it was running; *drains* suppress dispatch
//!   without killing; *permanent* outages remove the resource for good;
//! * **launch failures** (SAGA adaptor layer) — extra transient
//!   submission failures on top of the adaptor's own rate, plus a
//!   probability that a submission fails permanently;
//! * **unit faults** (pilot agent layer) — a task dies mid-execution,
//!   transiently (retryable) or permanently (poisoned input);
//! * **staging degradation** (data layer) — the origin uplink loses
//!   bandwidth for a window;
//! * **information degradation** (bundle layer) — queue-state queries
//!   return garbage, time out, or black out entirely for a window; the
//!   resource keeps working, but decisions about it run on stale
//!   knowledge.
//!
//! The companion [`RecoveryPolicy`] configures the self-healing layer:
//! pilot replacement with capped exponential backoff, per-resource
//! blacklisting, bounded unit retries, and strategy re-planning on
//! permanent resource loss.

use aimes_sim::{SimDuration, SimRng, SimTime};
use serde::{Deserialize, Serialize};

/// What an outage does to the resource.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum OutageKind {
    /// Hard outage: running jobs are killed, no dispatch in the window.
    Outage,
    /// Scheduled drain: running jobs finish, but nothing new starts.
    Drain,
    /// The resource never comes back (decommissioned / network-severed).
    Permanent,
}

/// One declared outage window.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct OutageSpec {
    pub resource: String,
    /// Window start, in seconds after application submission.
    pub at_secs: f64,
    /// Window length in seconds (ignored for [`OutageKind::Permanent`]).
    pub duration_secs: f64,
    pub kind: OutageKind,
}

/// A staging-degradation window on the origin uplink.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct StagingFault {
    /// Window start, in seconds after application submission.
    pub at_secs: f64,
    pub duration_secs: f64,
    /// Bandwidth multiplier during the window, in (0, 1].
    pub bandwidth_factor: f64,
}

/// A window in which a resource's heartbeats are delivered late (a slow
/// or partitioned WAN path). Only observable when failure detection is
/// enabled: the delay can push a live pilot past the suspicion — or even
/// the declaration — threshold, which is exactly the false-positive
/// behaviour the detector must be measured against.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct HeartbeatDelaySpec {
    pub resource: String,
    /// Window start, in seconds after application submission.
    pub at_secs: f64,
    /// Window length in seconds.
    pub duration_secs: f64,
    /// Extra delivery delay for heartbeats emitted inside the window.
    pub delay_secs: f64,
}

/// A window in which a resource's *information channel* answers nothing:
/// queue-state queries time out instead of returning an estimate. The
/// resource itself keeps running — only the knowledge about it is gone,
/// which is exactly the gap between a machine being up and the middleware
/// knowing it is up.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct InfoBlackoutSpec {
    /// Resource name, or `"*"` for every resource in the pool.
    pub resource: String,
    /// Window start, in seconds after application submission.
    pub at_secs: f64,
    /// Window length in seconds.
    pub duration_secs: f64,
}

/// What one information-channel query observed.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum InfoOutcome {
    /// The channel answered with a usable value.
    Ok,
    /// The channel answered, but the payload is garbage (stale daemon,
    /// truncated response, wrong units) and must not be trusted.
    Corrupt,
    /// The channel did not answer at all.
    Unavailable,
}

/// The information-channel fault family: degradation of *knowledge about*
/// resources rather than of the resources themselves. Blackout windows
/// make queries time out deterministically; the per-query chances model a
/// flaky information service. Like every other family here, the outcomes
/// are drawn from per-resource forked streams, so the answers one
/// resource's channel gives do not depend on how often the others are
/// queried.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct InfoFaultSpec {
    /// Deterministic unavailability windows.
    #[serde(default)]
    pub blackouts: Vec<InfoBlackoutSpec>,
    /// Per-query probability the answer is garbage.
    #[serde(default)]
    pub corrupt_chance: f64,
    /// Per-query probability the channel does not answer (outside any
    /// blackout window, which is always unavailable).
    #[serde(default)]
    pub unavailable_chance: f64,
}

impl InfoFaultSpec {
    /// A spec that degrades nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// True if the spec cannot perturb any query.
    pub fn is_noop(&self) -> bool {
        self.blackouts.is_empty() && self.corrupt_chance <= 0.0 && self.unavailable_chance <= 0.0
    }

    /// Reject declarations that cannot mean what they say, in the same
    /// spirit as [`FaultSpec::validate`].
    pub fn validate(&self) -> Result<(), String> {
        for (chance, name) in [
            (self.corrupt_chance, "info.corrupt_chance"),
            (self.unavailable_chance, "info.unavailable_chance"),
        ] {
            if !(chance.is_finite() && (0.0..=1.0).contains(&chance)) {
                return Err(format!("{name} {chance}: must be in [0, 1]"));
            }
        }
        for b in &self.blackouts {
            if !(b.at_secs.is_finite() && b.at_secs >= 0.0) {
                return Err(format!(
                    "info.blackouts[{}].at_secs {}: must be finite and non-negative",
                    b.resource, b.at_secs
                ));
            }
            if !(b.duration_secs.is_finite() && b.duration_secs > 0.0) {
                return Err(format!(
                    "info.blackouts[{}].duration_secs {}: empty window",
                    b.resource, b.duration_secs
                ));
            }
        }
        Ok(())
    }

    /// Resolve the channel outcome for one query on `resource`, issued
    /// `since_submit_secs` after application submission. `rng` must be the
    /// resource's dedicated stream (fork `info.{resource}` from the run
    /// seed): the outcome sequence one channel produces then depends only
    /// on the seed and that channel's own query sequence.
    pub fn outcome(&self, resource: &str, since_submit_secs: f64, rng: &mut SimRng) -> InfoOutcome {
        // Draw order is fixed (unavailable, then corrupt) and both draws
        // always happen, so the stream position is a pure function of the
        // query count even when one chance is zero.
        let unavailable = rng.chance(self.unavailable_chance.clamp(0.0, 1.0));
        let corrupt = rng.chance(self.corrupt_chance.clamp(0.0, 1.0));
        let blacked_out = self.blackouts.iter().any(|b| {
            (b.resource == "*" || b.resource == resource)
                && since_submit_secs >= b.at_secs
                && since_submit_secs < b.at_secs + b.duration_secs
        });
        if blacked_out || unavailable {
            InfoOutcome::Unavailable
        } else if corrupt {
            InfoOutcome::Corrupt
        } else {
            InfoOutcome::Ok
        }
    }
}

/// A named failure domain: resources that share a fate-carrying
/// dependency — a zone, a parallel filesystem, a network segment — and
/// therefore tend to die together rather than independently.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DomainSpec {
    pub name: String,
    /// Resource names belonging to the domain. A resource belongs to at
    /// most one domain.
    pub members: Vec<String>,
}

/// The correlated-failure fault family: a trigger outage inside one
/// failure domain that may propagate to the domain's other members after
/// a per-member delay. Propagation verdicts and delays are drawn from a
/// *per-domain* forked stream (`cascade.{domain}`), so a fixed-seed
/// cascade replays byte-identically and does not depend on pool order or
/// on what the other domains are doing.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct CascadeSpec {
    /// The failure domains over the run's resource pool.
    pub domains: Vec<DomainSpec>,
    /// The initiating outage. Its resource must belong to a domain; the
    /// cascade spreads to that domain's other members.
    pub trigger: OutageSpec,
    /// Per-member probability the trigger propagates to it.
    #[serde(default = "default_propagation_chance")]
    pub propagation_chance: f64,
    /// Propagation delay range `[lo, hi)` in seconds after the trigger.
    #[serde(default = "default_propagation_delay")]
    pub propagation_delay_secs: (f64, f64),
}

fn default_propagation_chance() -> f64 {
    1.0
}

fn default_propagation_delay() -> (f64, f64) {
    (30.0, 300.0)
}

impl CascadeSpec {
    /// The domain a resource belongs to, if any.
    pub fn domain_of(&self, resource: &str) -> Option<&DomainSpec> {
        self.domains
            .iter()
            .find(|d| d.members.iter().any(|m| m == resource))
    }

    /// Reject declarations that cannot mean what they say, in the same
    /// spirit as [`FaultSpec::validate`].
    pub fn validate(&self) -> Result<(), String> {
        if self.domains.is_empty() {
            return Err("cascade.domains: at least one failure domain required".into());
        }
        let mut seen_domains = std::collections::BTreeSet::new();
        let mut seen_members = std::collections::BTreeSet::new();
        for d in &self.domains {
            if d.name.is_empty() {
                return Err("cascade.domains: empty domain name".into());
            }
            if !seen_domains.insert(d.name.as_str()) {
                return Err(format!(
                    "cascade.domains[{}]: duplicate domain name",
                    d.name
                ));
            }
            if d.members.is_empty() {
                return Err(format!("cascade.domains[{}]: no members", d.name));
            }
            for m in &d.members {
                if !seen_members.insert(m.as_str()) {
                    return Err(format!(
                        "cascade.domains[{}]: resource {m} is in more than one domain",
                        d.name
                    ));
                }
            }
        }
        if self.domain_of(&self.trigger.resource).is_none() {
            return Err(format!(
                "cascade.trigger resource {} belongs to no declared domain",
                self.trigger.resource
            ));
        }
        if !(self.trigger.at_secs.is_finite() && self.trigger.at_secs >= 0.0) {
            return Err(format!(
                "cascade.trigger.at_secs {}: must be finite and non-negative",
                self.trigger.at_secs
            ));
        }
        if !(self.propagation_chance.is_finite() && (0.0..=1.0).contains(&self.propagation_chance))
        {
            return Err(format!(
                "cascade.propagation_chance {}: must be in [0, 1]",
                self.propagation_chance
            ));
        }
        let (lo, hi) = self.propagation_delay_secs;
        if !lo.is_finite() || !hi.is_finite() || lo < 0.0 {
            return Err(format!(
                "cascade.propagation_delay_secs ({lo}, {hi}): bounds must be \
                 finite and non-negative"
            ));
        }
        if hi < lo {
            return Err(format!(
                "cascade.propagation_delay_secs ({lo}, {hi}): inverted range"
            ));
        }
        Ok(())
    }
}

/// Declarative fault model for one run. Compile against the run seed with
/// [`FaultSpec::compile`] to obtain the concrete, replayable schedule.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSpec {
    /// Explicit outage windows.
    #[serde(default)]
    pub outages: Vec<OutageSpec>,
    /// Expected number of *random* transient outages per resource drawn
    /// uniformly over `[0, horizon_secs)`.
    #[serde(default)]
    pub random_outages_per_resource: f64,
    /// Random-outage duration range `[lo, hi)` in seconds.
    #[serde(default = "default_outage_duration")]
    pub random_outage_duration_secs: (f64, f64),
    /// Horizon for random-outage placement, in seconds after submission.
    #[serde(default = "default_horizon")]
    pub horizon_secs: f64,
    /// Extra transient submission-failure probability, added to the
    /// adaptor's own rate.
    #[serde(default)]
    pub launch_transient_chance: f64,
    /// Probability a pilot submission fails permanently (no retries).
    #[serde(default)]
    pub launch_permanent_chance: f64,
    /// Per-attempt probability a unit dies mid-execution.
    #[serde(default)]
    pub unit_failure_chance: f64,
    /// Given a unit fault, probability it is permanent (the unit is
    /// poisoned and fails without further retries).
    #[serde(default)]
    pub unit_permanent_chance: f64,
    /// Optional origin-uplink degradation window.
    #[serde(default)]
    pub staging: Option<StagingFault>,
    /// Heartbeat-delivery delay windows (observable only with failure
    /// detection enabled).
    #[serde(default)]
    pub heartbeat_delays: Vec<HeartbeatDelaySpec>,
    /// Information-channel degradation (bundle layer).
    #[serde(default)]
    pub info: InfoFaultSpec,
    /// Correlated-failure cascade over named failure domains.
    #[serde(default)]
    pub cascade: Option<CascadeSpec>,
}

fn default_outage_duration() -> (f64, f64) {
    (600.0, 3600.0)
}

fn default_horizon() -> f64 {
    24.0 * 3600.0
}

impl Default for FaultSpec {
    fn default() -> Self {
        FaultSpec {
            outages: Vec::new(),
            random_outages_per_resource: 0.0,
            random_outage_duration_secs: default_outage_duration(),
            horizon_secs: default_horizon(),
            launch_transient_chance: 0.0,
            launch_permanent_chance: 0.0,
            unit_failure_chance: 0.0,
            unit_permanent_chance: 0.0,
            staging: None,
            heartbeat_delays: Vec::new(),
            info: InfoFaultSpec::default(),
            cascade: None,
        }
    }
}

impl FaultSpec {
    /// A spec that injects nothing (the identity fault model).
    pub fn none() -> Self {
        Self::default()
    }

    /// True if the spec cannot perturb a run at all.
    pub fn is_noop(&self) -> bool {
        self.outages.is_empty()
            && self.random_outages_per_resource <= 0.0
            && self.launch_transient_chance <= 0.0
            && self.launch_permanent_chance <= 0.0
            && self.unit_failure_chance <= 0.0
            && self.staging.is_none()
            && self.heartbeat_delays.is_empty()
            && self.info.is_noop()
            && self.cascade.is_none()
    }

    /// Check the spec for declarations that cannot mean what they say.
    /// [`FaultSpec::compile`] assumes a validated spec; callers that
    /// accept specs from outside (the middleware, experiment configs)
    /// should reject invalid ones instead of running a schedule that
    /// silently deviates from the declaration.
    pub fn validate(&self) -> Result<(), String> {
        let (lo, hi) = self.random_outage_duration_secs;
        if !lo.is_finite() || !hi.is_finite() || lo < 0.0 {
            return Err(format!(
                "random_outage_duration_secs ({lo}, {hi}): bounds must be finite and non-negative"
            ));
        }
        if hi < lo {
            return Err(format!(
                "random_outage_duration_secs ({lo}, {hi}): inverted range"
            ));
        }
        if self.random_outages_per_resource > 0.0 && hi <= lo {
            return Err(format!(
                "random_outage_duration_secs ({lo}, {hi}): empty range [lo, hi) \
                 with random outages enabled"
            ));
        }
        if let Some(s) = &self.staging {
            if !(s.bandwidth_factor > 0.0 && s.bandwidth_factor <= 1.0) {
                return Err(format!(
                    "staging.bandwidth_factor {}: must be in (0, 1]",
                    s.bandwidth_factor
                ));
            }
        }
        for h in &self.heartbeat_delays {
            if !(h.delay_secs.is_finite() && h.delay_secs > 0.0) {
                return Err(format!(
                    "heartbeat_delays[{}].delay_secs {}: must be finite and positive",
                    h.resource, h.delay_secs
                ));
            }
            if !(h.duration_secs.is_finite() && h.duration_secs > 0.0) {
                return Err(format!(
                    "heartbeat_delays[{}].duration_secs {}: empty window",
                    h.resource, h.duration_secs
                ));
            }
        }
        self.info.validate()?;
        if let Some(c) = &self.cascade {
            c.validate()?;
        }
        Ok(())
    }

    /// Expand the spec into a concrete schedule. `resources` is the pool
    /// the run executes on; `rng` should be forked from the run seed so
    /// the same seed always yields the same schedule. The spec must pass
    /// [`FaultSpec::validate`]; a degenerate duration range here collapses
    /// to its lower bound rather than being silently widened.
    pub fn compile(&self, resources: &[String], rng: &mut SimRng) -> FaultSchedule {
        let mut outages: Vec<ScheduledOutage> = self
            .outages
            .iter()
            .map(|o| ScheduledOutage {
                resource: o.resource.clone(),
                at: SimTime::from_secs(o.at_secs),
                duration: SimDuration::from_secs(o.duration_secs.max(0.0)),
                kind: o.kind,
            })
            .collect();
        if self.random_outages_per_resource > 0.0 {
            let (lo, hi) = self.random_outage_duration_secs;
            for resource in resources {
                // Deterministic per-resource stream: the outage pattern on
                // one machine does not depend on the pool ordering.
                let mut r = rng.fork(&format!("outages.{resource}"));
                let n = self.random_outages_per_resource.floor() as u32
                    + u32::from(r.chance(self.random_outages_per_resource.fract()));
                for _ in 0..n {
                    let at = r.uniform(0.0, self.horizon_secs.max(1.0));
                    let duration = if hi > lo { r.uniform(lo, hi) } else { lo };
                    outages.push(ScheduledOutage {
                        resource: resource.clone(),
                        at: SimTime::from_secs(at),
                        duration: SimDuration::from_secs(duration),
                        kind: OutageKind::Outage,
                    });
                }
            }
        }
        if let Some(c) = &self.cascade {
            outages.push(ScheduledOutage {
                resource: c.trigger.resource.clone(),
                at: SimTime::from_secs(c.trigger.at_secs),
                duration: SimDuration::from_secs(c.trigger.duration_secs.max(0.0)),
                kind: c.trigger.kind,
            });
            if let Some(domain) = c.domain_of(&c.trigger.resource) {
                // Per-domain stream: the verdicts and delays one domain's
                // cascade produces depend only on the seed and the domain
                // name. Both draws always happen per member, so each
                // member's stream position is fixed whatever the chance
                // resolves to.
                let mut r = rng.fork(&format!("cascade.{}", domain.name));
                let (lo, hi) = c.propagation_delay_secs;
                for member in &domain.members {
                    if *member == c.trigger.resource {
                        continue;
                    }
                    let hit = r.chance(c.propagation_chance.clamp(0.0, 1.0));
                    let delay = if hi > lo { r.uniform(lo, hi) } else { lo };
                    if hit {
                        outages.push(ScheduledOutage {
                            resource: member.clone(),
                            at: SimTime::from_secs(c.trigger.at_secs + delay),
                            duration: SimDuration::from_secs(c.trigger.duration_secs.max(0.0)),
                            kind: c.trigger.kind,
                        });
                    }
                }
            }
        }
        outages.sort_by(|a, b| a.at.cmp(&b.at).then_with(|| a.resource.cmp(&b.resource)));
        FaultSchedule {
            outages,
            launch_transient_chance: self.launch_transient_chance.clamp(0.0, 0.95),
            launch_permanent_chance: self.launch_permanent_chance.clamp(0.0, 1.0),
            unit_failure_chance: self.unit_failure_chance.clamp(0.0, 1.0),
            unit_permanent_chance: self.unit_permanent_chance.clamp(0.0, 1.0),
            staging: self.staging,
            heartbeat_delays: self.heartbeat_delays.clone(),
            info: InfoFaultSpec {
                blackouts: self.info.blackouts.clone(),
                corrupt_chance: self.info.corrupt_chance.clamp(0.0, 1.0),
                unavailable_chance: self.info.unavailable_chance.clamp(0.0, 1.0),
            },
        }
    }
}

/// A concrete, fully resolved outage.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct ScheduledOutage {
    pub resource: String,
    pub at: SimTime,
    pub duration: SimDuration,
    pub kind: OutageKind,
}

/// The compiled, replayable fault schedule for one run.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct FaultSchedule {
    /// Outages sorted by start time.
    pub outages: Vec<ScheduledOutage>,
    pub launch_transient_chance: f64,
    pub launch_permanent_chance: f64,
    pub unit_failure_chance: f64,
    pub unit_permanent_chance: f64,
    pub staging: Option<StagingFault>,
    /// Heartbeat-delivery delay windows, verbatim from the spec.
    #[serde(default)]
    pub heartbeat_delays: Vec<HeartbeatDelaySpec>,
    /// Information-channel degradation, with clamped chances. Outcomes are
    /// resolved per query via [`InfoFaultSpec::outcome`].
    #[serde(default)]
    pub info: InfoFaultSpec,
}

/// Phi-accrual thresholds for [`DetectionSpec`]: the silence threshold is
/// `phi · mean_interval · ln 10`, with the mean adapting to the observed
/// heartbeat inter-arrivals over a sliding window.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct PhiSpec {
    /// Phi at which a pilot becomes Suspected.
    pub suspect_phi: f64,
    /// Phi at which a pilot is Declared-Dead.
    pub declare_phi: f64,
    /// Sliding-window length (inter-arrival samples).
    pub window: usize,
}

/// Failure-detection configuration. When present, the middleware stops
/// consuming fault-injection ground truth for recovery: pilots emit
/// heartbeats, a per-pilot suspicion detector turns silence into
/// declarations (paying a detection latency Td), and per-resource circuit
/// breakers on the SAGA layer turn repeated operation failures into
/// blacklisting and re-planning.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct DetectionSpec {
    /// Agent heartbeat period.
    #[serde(default = "default_heartbeat")]
    pub heartbeat_secs: f64,
    /// Silence before Healthy → Suspected (timeout mode).
    #[serde(default = "default_suspect_after")]
    pub suspect_after_secs: f64,
    /// Silence before Suspected → Declared-Dead (timeout mode).
    #[serde(default = "default_declare_after")]
    pub declare_after_secs: f64,
    /// Switch to phi-accrual thresholds instead of fixed timeouts.
    #[serde(default)]
    pub phi: Option<PhiSpec>,
    /// On suspicion, issue a SAGA status query; a terminal answer
    /// declares immediately (short Td).
    #[serde(default = "default_true")]
    pub confirm_with_status_query: bool,
    /// Consecutive SAGA operation failures before a resource's circuit
    /// breaker opens (feeding blacklist / re-planning).
    #[serde(default = "default_breaker_threshold")]
    pub breaker_failure_threshold: u32,
    /// How long an open breaker waits before admitting a half-open probe.
    #[serde(default = "default_breaker_cooldown")]
    pub breaker_cooldown_secs: f64,
}

fn default_heartbeat() -> f64 {
    60.0
}
fn default_suspect_after() -> f64 {
    150.0
}
fn default_declare_after() -> f64 {
    300.0
}
fn default_breaker_threshold() -> u32 {
    5
}
fn default_breaker_cooldown() -> f64 {
    300.0
}

impl Default for DetectionSpec {
    fn default() -> Self {
        DetectionSpec {
            heartbeat_secs: default_heartbeat(),
            suspect_after_secs: default_suspect_after(),
            declare_after_secs: default_declare_after(),
            phi: None,
            confirm_with_status_query: true,
            breaker_failure_threshold: default_breaker_threshold(),
            breaker_cooldown_secs: default_breaker_cooldown(),
        }
    }
}

/// Proactive-evacuation configuration: how many failure signals
/// (suspicions, declarations, or pilot failures) inside one failure
/// domain within a sliding window raise a `DomainAlarm`. On alarm the
/// middleware drains the domain's surviving pilots and re-plans their
/// units onto unaffected domains instead of waiting for each pilot to be
/// declared dead individually. Only meaningful when the run's
/// [`FaultSpec`] declares cascade domains.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct EvacuationSpec {
    /// Signals within the window before the domain alarms.
    #[serde(default = "default_alarm_threshold")]
    pub alarm_threshold: u32,
    /// Sliding-window length in seconds.
    #[serde(default = "default_alarm_window")]
    pub alarm_window_secs: f64,
}

fn default_alarm_threshold() -> u32 {
    2
}

fn default_alarm_window() -> f64 {
    600.0
}

impl Default for EvacuationSpec {
    fn default() -> Self {
        EvacuationSpec {
            alarm_threshold: default_alarm_threshold(),
            alarm_window_secs: default_alarm_window(),
        }
    }
}

/// Self-healing configuration. `None` at the run level means the legacy
/// behaviour: failed pilots stay dead and unit retries are immediate.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Replace failed pilots (same description, possibly another
    /// resource) after a backoff.
    #[serde(default = "default_true")]
    pub pilot_replacement: bool,
    /// Replacement generations allowed per original pilot.
    #[serde(default = "default_max_replacements")]
    pub max_replacements_per_pilot: u32,
    /// First replacement backoff; doubles per generation.
    #[serde(default = "default_backoff")]
    pub replacement_backoff: SimDuration,
    /// Cap on the exponential replacement backoff.
    #[serde(default = "default_backoff_cap")]
    pub replacement_backoff_cap: SimDuration,
    /// Blacklist a resource after this many consecutive launch failures.
    #[serde(default = "default_blacklist_after")]
    pub blacklist_after: u32,
    /// Base backoff before a failed unit re-enters the ready queue;
    /// doubles per attempt. Zero restores immediate restart.
    #[serde(default)]
    pub unit_retry_backoff: SimDuration,
    /// Re-derive the execution strategy over surviving resources when a
    /// resource is lost permanently.
    #[serde(default = "default_true")]
    pub replan_on_resource_loss: bool,
    /// Signal-based failure detection. `None` keeps the oracle behaviour
    /// of PR 1 (recovery reacts at the injection instant); `Some` makes
    /// recovery purely signal-driven.
    #[serde(default)]
    pub detection: Option<DetectionSpec>,
    /// Proactive domain evacuation on correlated-failure alarms. `None`
    /// keeps recovery purely reactive (per-pilot).
    #[serde(default)]
    pub evacuation: Option<EvacuationSpec>,
    /// Checkpoint boundary interval for executing units. Zero (the
    /// default) disables checkpointing: an aborted attempt restarts from
    /// scratch. Non-zero makes a restarted attempt resume from the last
    /// boundary, salvaging the checkpointed core-hours.
    #[serde(default)]
    pub checkpoint_interval: SimDuration,
}

fn default_true() -> bool {
    true
}
fn default_max_replacements() -> u32 {
    3
}
fn default_backoff() -> SimDuration {
    SimDuration::from_secs(60.0)
}
fn default_backoff_cap() -> SimDuration {
    SimDuration::from_secs(900.0)
}
fn default_blacklist_after() -> u32 {
    3
}

impl Default for RecoveryPolicy {
    fn default() -> Self {
        RecoveryPolicy {
            pilot_replacement: true,
            max_replacements_per_pilot: default_max_replacements(),
            replacement_backoff: default_backoff(),
            replacement_backoff_cap: default_backoff_cap(),
            blacklist_after: default_blacklist_after(),
            unit_retry_backoff: SimDuration::from_secs(5.0),
            replan_on_resource_loss: true,
            detection: None,
            evacuation: None,
            checkpoint_interval: SimDuration::ZERO,
        }
    }
}

impl RecoveryPolicy {
    /// Recovery switched off entirely: faults surface as errors.
    pub fn disabled() -> Self {
        RecoveryPolicy {
            pilot_replacement: false,
            max_replacements_per_pilot: 0,
            replacement_backoff: SimDuration::ZERO,
            replacement_backoff_cap: SimDuration::ZERO,
            blacklist_after: u32::MAX,
            unit_retry_backoff: SimDuration::ZERO,
            replan_on_resource_loss: false,
            detection: None,
            evacuation: None,
            checkpoint_interval: SimDuration::ZERO,
        }
    }

    /// The default policy with signal-based detection switched on.
    pub fn with_detection() -> Self {
        RecoveryPolicy {
            detection: Some(DetectionSpec::default()),
            ..RecoveryPolicy::default()
        }
    }

    /// Check the policy for declarations that cannot mean what they say,
    /// in the same spirit as [`FaultSpec::validate`]. An inverted backoff
    /// cap used to be silently clamped at delay time; rejecting it here
    /// keeps the declared policy and the executed policy identical.
    pub fn validate(&self) -> Result<(), String> {
        if self.replacement_backoff_cap < self.replacement_backoff {
            return Err(format!(
                "replacement_backoff_cap {:.0}s < replacement_backoff {:.0}s: inverted cap",
                self.replacement_backoff_cap.as_secs(),
                self.replacement_backoff.as_secs()
            ));
        }
        if self.blacklist_after == 0 {
            return Err(
                "blacklist_after 0: every resource would be blacklisted before \
                 its first launch failure"
                    .into(),
            );
        }
        if let Some(e) = &self.evacuation {
            if e.alarm_threshold == 0 {
                return Err("evacuation.alarm_threshold 0: would alarm unconditionally".into());
            }
            if !(e.alarm_window_secs.is_finite() && e.alarm_window_secs > 0.0) {
                return Err(format!(
                    "evacuation.alarm_window_secs {}: empty window",
                    e.alarm_window_secs
                ));
            }
        }
        if !self.checkpoint_interval.as_secs().is_finite() {
            return Err("checkpoint_interval: must be finite".into());
        }
        Ok(())
    }

    /// Backoff before replacement generation `generation` (0-based):
    /// `base * 2^generation`, capped.
    pub fn replacement_delay(&self, generation: u32) -> SimDuration {
        let factor = 2.0f64.powi(generation.min(20) as i32);
        (self.replacement_backoff * factor).min(self.replacement_backoff_cap)
    }

    /// Backoff before retry number `attempt` (1-based count of attempts
    /// already made): `base * 2^(attempt-1)`, capped at the replacement
    /// cap as a shared ceiling.
    pub fn unit_retry_delay(&self, attempt: u32) -> SimDuration {
        if self.unit_retry_backoff.is_zero() {
            return SimDuration::ZERO;
        }
        let factor = 2.0f64.powi(attempt.saturating_sub(1).min(20) as i32);
        (self.unit_retry_backoff * factor).min(self.replacement_backoff_cap)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool() -> Vec<String> {
        vec!["alpha".into(), "beta".into(), "gamma".into()]
    }

    #[test]
    fn noop_spec_compiles_empty() {
        let spec = FaultSpec::none();
        assert!(spec.is_noop());
        let mut rng = SimRng::new(7);
        let sched = spec.compile(&pool(), &mut rng);
        assert!(sched.outages.is_empty());
        assert_eq!(sched.unit_failure_chance, 0.0);
    }

    #[test]
    fn explicit_outages_preserved_and_sorted() {
        let spec = FaultSpec {
            outages: vec![
                OutageSpec {
                    resource: "beta".into(),
                    at_secs: 5000.0,
                    duration_secs: 600.0,
                    kind: OutageKind::Drain,
                },
                OutageSpec {
                    resource: "alpha".into(),
                    at_secs: 1000.0,
                    duration_secs: 300.0,
                    kind: OutageKind::Outage,
                },
            ],
            ..FaultSpec::default()
        };
        let sched = spec.compile(&pool(), &mut SimRng::new(1));
        assert_eq!(sched.outages.len(), 2);
        assert_eq!(sched.outages[0].resource, "alpha");
        assert_eq!(sched.outages[0].at, SimTime::from_secs(1000.0));
        assert_eq!(sched.outages[1].kind, OutageKind::Drain);
    }

    #[test]
    fn same_seed_same_schedule() {
        let spec = FaultSpec {
            random_outages_per_resource: 1.7,
            ..FaultSpec::default()
        };
        let a = spec.compile(&pool(), &mut SimRng::new(42));
        let b = spec.compile(&pool(), &mut SimRng::new(42));
        assert_eq!(a, b);
        let c = spec.compile(&pool(), &mut SimRng::new(43));
        assert_ne!(a, c, "different seeds should move the outages");
    }

    #[test]
    fn random_outages_fall_in_horizon() {
        let spec = FaultSpec {
            random_outages_per_resource: 3.0,
            horizon_secs: 10_000.0,
            random_outage_duration_secs: (100.0, 200.0),
            ..FaultSpec::default()
        };
        let sched = spec.compile(&pool(), &mut SimRng::new(9));
        assert_eq!(sched.outages.len(), 9); // 3 per resource, 3 resources
        for o in &sched.outages {
            assert!(o.at.as_secs() < 10_000.0);
            assert!(o.duration.as_secs() >= 100.0 && o.duration.as_secs() < 200.0);
            assert_eq!(o.kind, OutageKind::Outage);
        }
        // Sorted by start time.
        for w in sched.outages.windows(2) {
            assert!(w[0].at <= w[1].at);
        }
    }

    #[test]
    fn outage_pattern_is_per_resource_stable() {
        // Removing one resource must not perturb the others' outages.
        let spec = FaultSpec {
            random_outages_per_resource: 2.0,
            ..FaultSpec::default()
        };
        let full = spec.compile(&pool(), &mut SimRng::new(5));
        let partial = spec.compile(&["alpha".to_string()], &mut SimRng::new(5));
        let full_alpha: Vec<_> = full
            .outages
            .iter()
            .filter(|o| o.resource == "alpha")
            .collect();
        let partial_alpha: Vec<_> = partial.outages.iter().collect();
        assert_eq!(full_alpha, partial_alpha);
    }

    #[test]
    fn validate_rejects_degenerate_duration_ranges() {
        assert!(FaultSpec::none().validate().is_ok());
        let empty = FaultSpec {
            random_outages_per_resource: 1.0,
            random_outage_duration_secs: (100.0, 100.0),
            ..FaultSpec::default()
        };
        assert!(empty.validate().unwrap_err().contains("empty range"));
        let inverted = FaultSpec {
            random_outage_duration_secs: (200.0, 100.0),
            ..FaultSpec::default()
        };
        assert!(inverted.validate().unwrap_err().contains("inverted"));
        let bad_staging = FaultSpec {
            staging: Some(StagingFault {
                at_secs: 0.0,
                duration_secs: 10.0,
                bandwidth_factor: 0.0,
            }),
            ..FaultSpec::default()
        };
        assert!(bad_staging.validate().is_err());
        // A point range without random outages is inert, hence legal.
        let inert = FaultSpec {
            random_outage_duration_secs: (100.0, 100.0),
            ..FaultSpec::default()
        };
        assert!(inert.validate().is_ok());
    }

    #[test]
    fn narrow_duration_ranges_are_not_widened() {
        // Sub-second ranges used to be silently widened to at least 1 s.
        let spec = FaultSpec {
            random_outages_per_resource: 4.0,
            random_outage_duration_secs: (100.0, 100.25),
            ..FaultSpec::default()
        };
        assert!(spec.validate().is_ok());
        let sched = spec.compile(&pool(), &mut SimRng::new(3));
        for o in &sched.outages {
            assert!(
                o.duration.as_secs() >= 100.0 && o.duration.as_secs() < 100.25,
                "duration {} escaped the declared range",
                o.duration.as_secs()
            );
        }
    }

    #[test]
    fn probabilities_are_clamped() {
        let spec = FaultSpec {
            launch_transient_chance: 2.0,
            launch_permanent_chance: -1.0,
            unit_failure_chance: 7.0,
            ..FaultSpec::default()
        };
        let sched = spec.compile(&pool(), &mut SimRng::new(1));
        assert_eq!(sched.launch_transient_chance, 0.95);
        assert_eq!(sched.launch_permanent_chance, 0.0);
        assert_eq!(sched.unit_failure_chance, 1.0);
    }

    #[test]
    fn recovery_backoffs_double_and_cap() {
        let p = RecoveryPolicy {
            replacement_backoff: SimDuration::from_secs(10.0),
            replacement_backoff_cap: SimDuration::from_secs(35.0),
            unit_retry_backoff: SimDuration::from_secs(2.0),
            ..RecoveryPolicy::default()
        };
        assert_eq!(p.replacement_delay(0), SimDuration::from_secs(10.0));
        assert_eq!(p.replacement_delay(1), SimDuration::from_secs(20.0));
        assert_eq!(p.replacement_delay(2), SimDuration::from_secs(35.0)); // capped
        assert_eq!(p.unit_retry_delay(1), SimDuration::from_secs(2.0));
        assert_eq!(p.unit_retry_delay(3), SimDuration::from_secs(8.0));
        assert_eq!(
            RecoveryPolicy::disabled().unit_retry_delay(5),
            SimDuration::ZERO
        );
    }

    #[test]
    fn spec_serde_roundtrip() {
        let spec = FaultSpec {
            outages: vec![OutageSpec {
                resource: "alpha".into(),
                at_secs: 100.0,
                duration_secs: 50.0,
                kind: OutageKind::Permanent,
            }],
            unit_failure_chance: 0.1,
            staging: Some(StagingFault {
                at_secs: 10.0,
                duration_secs: 500.0,
                bandwidth_factor: 0.25,
            }),
            heartbeat_delays: vec![HeartbeatDelaySpec {
                resource: "beta".into(),
                at_secs: 200.0,
                duration_secs: 300.0,
                delay_secs: 120.0,
            }],
            ..FaultSpec::default()
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: FaultSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        let policy = RecoveryPolicy::with_detection();
        let json = serde_json::to_string(&policy).unwrap();
        let back: RecoveryPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(policy, back);
        // Pre-detection policies (no `detection` key) must still load.
        let legacy: RecoveryPolicy =
            serde_json::from_str(r#"{"pilot_replacement": true}"#).unwrap();
        assert_eq!(legacy.detection, None);
    }

    #[test]
    fn heartbeat_delays_validate_and_compile_through() {
        let window = HeartbeatDelaySpec {
            resource: "alpha".into(),
            at_secs: 100.0,
            duration_secs: 200.0,
            delay_secs: 90.0,
        };
        let spec = FaultSpec {
            heartbeat_delays: vec![window.clone()],
            ..FaultSpec::default()
        };
        assert!(spec.validate().is_ok());
        assert!(!spec.is_noop(), "delay windows can perturb detection runs");
        let sched = spec.compile(&pool(), &mut SimRng::new(1));
        assert_eq!(sched.heartbeat_delays, vec![window]);

        let zero_delay = FaultSpec {
            heartbeat_delays: vec![HeartbeatDelaySpec {
                delay_secs: 0.0,
                ..spec.heartbeat_delays[0].clone()
            }],
            ..FaultSpec::default()
        };
        assert!(zero_delay.validate().unwrap_err().contains("delay_secs"));
        let empty_window = FaultSpec {
            heartbeat_delays: vec![HeartbeatDelaySpec {
                duration_secs: 0.0,
                ..spec.heartbeat_delays[0].clone()
            }],
            ..FaultSpec::default()
        };
        assert!(empty_window
            .validate()
            .unwrap_err()
            .contains("empty window"));
    }

    #[test]
    fn info_faults_validate_noop_and_roundtrip() {
        assert!(InfoFaultSpec::none().is_noop());
        let spec = FaultSpec {
            info: InfoFaultSpec {
                blackouts: vec![InfoBlackoutSpec {
                    resource: "*".into(),
                    at_secs: 100.0,
                    duration_secs: 500.0,
                }],
                corrupt_chance: 0.2,
                unavailable_chance: 0.1,
            },
            ..FaultSpec::default()
        };
        assert!(!spec.is_noop(), "info degradation can perturb a run");
        assert!(spec.validate().is_ok());
        let json = serde_json::to_string(&spec).unwrap();
        let back: FaultSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        // Pre-info specs (no `info` key) must still load as noop.
        let legacy: FaultSpec = serde_json::from_str(r#"{"unit_failure_chance": 0.1}"#).unwrap();
        assert!(legacy.info.is_noop());

        let bad_chance = FaultSpec {
            info: InfoFaultSpec {
                corrupt_chance: 1.5,
                ..InfoFaultSpec::none()
            },
            ..FaultSpec::default()
        };
        assert!(bad_chance.validate().unwrap_err().contains("[0, 1]"));
        let empty_window = FaultSpec {
            info: InfoFaultSpec {
                blackouts: vec![InfoBlackoutSpec {
                    resource: "alpha".into(),
                    at_secs: 0.0,
                    duration_secs: 0.0,
                }],
                ..InfoFaultSpec::none()
            },
            ..FaultSpec::default()
        };
        assert!(empty_window
            .validate()
            .unwrap_err()
            .contains("empty window"));
    }

    #[test]
    fn info_outcomes_are_stream_deterministic() {
        let spec = InfoFaultSpec {
            blackouts: vec![InfoBlackoutSpec {
                resource: "alpha".into(),
                at_secs: 1000.0,
                duration_secs: 500.0,
            }],
            corrupt_chance: 0.3,
            unavailable_chance: 0.2,
        };
        let draw = |seed: u64| {
            let mut r = SimRng::new(seed).fork("info.alpha");
            (0..32)
                .map(|i| spec.outcome("alpha", f64::from(i) * 10.0, &mut r))
                .collect::<Vec<_>>()
        };
        assert_eq!(draw(7), draw(7), "same seed, same outcome sequence");
        assert_ne!(draw(7), draw(8), "different seeds move the outcomes");

        // Inside the blackout window every query is unavailable, whatever
        // the chances say; other resources are untouched by it.
        let mut r = SimRng::new(1).fork("info.alpha");
        let blacked = InfoFaultSpec {
            blackouts: spec.blackouts.clone(),
            ..InfoFaultSpec::none()
        };
        assert_eq!(
            blacked.outcome("alpha", 1200.0, &mut r),
            InfoOutcome::Unavailable
        );
        assert_eq!(blacked.outcome("alpha", 1600.0, &mut r), InfoOutcome::Ok);
        assert_eq!(blacked.outcome("beta", 1200.0, &mut r), InfoOutcome::Ok);

        // Chances are clamped at compile time.
        let sched = FaultSpec {
            info: InfoFaultSpec {
                corrupt_chance: 3.0,
                unavailable_chance: -0.5,
                ..InfoFaultSpec::none()
            },
            ..FaultSpec::default()
        }
        .compile(&pool(), &mut SimRng::new(1));
        assert_eq!(sched.info.corrupt_chance, 1.0);
        assert_eq!(sched.info.unavailable_chance, 0.0);
    }

    #[test]
    fn detection_spec_defaults_order_sanely() {
        let d = DetectionSpec::default();
        assert!(d.heartbeat_secs < d.suspect_after_secs);
        assert!(d.suspect_after_secs < d.declare_after_secs);
        assert!(d.confirm_with_status_query);
        assert!(RecoveryPolicy::default().detection.is_none());
        assert!(RecoveryPolicy::with_detection().detection.is_some());
    }

    fn cascade(chance: f64) -> CascadeSpec {
        CascadeSpec {
            domains: vec![
                DomainSpec {
                    name: "zone-a".into(),
                    members: vec!["alpha".into(), "beta".into()],
                },
                DomainSpec {
                    name: "zone-b".into(),
                    members: vec!["gamma".into()],
                },
            ],
            trigger: OutageSpec {
                resource: "alpha".into(),
                at_secs: 500.0,
                duration_secs: 600.0,
                kind: OutageKind::Permanent,
            },
            propagation_chance: chance,
            propagation_delay_secs: (30.0, 120.0),
        }
    }

    #[test]
    fn cascade_spreads_inside_the_trigger_domain_only() {
        let spec = FaultSpec {
            cascade: Some(cascade(1.0)),
            ..FaultSpec::default()
        };
        assert!(!spec.is_noop(), "a cascade perturbs the run");
        assert!(spec.validate().is_ok());
        let sched = spec.compile(&pool(), &mut SimRng::new(11));
        // Trigger on alpha plus certain propagation to beta; gamma is in
        // another domain and untouched.
        assert_eq!(sched.outages.len(), 2);
        let alpha = sched
            .outages
            .iter()
            .find(|o| o.resource == "alpha")
            .unwrap();
        let beta = sched.outages.iter().find(|o| o.resource == "beta").unwrap();
        assert_eq!(alpha.at, SimTime::from_secs(500.0));
        assert_eq!(alpha.kind, OutageKind::Permanent);
        assert_eq!(beta.kind, OutageKind::Permanent);
        let lag = beta.at.as_secs() - alpha.at.as_secs();
        assert!(
            (30.0..120.0).contains(&lag),
            "delay {lag} escaped the range"
        );
        assert!(sched.outages.iter().all(|o| o.resource != "gamma"));
    }

    #[test]
    fn cascade_replays_byte_identically_per_domain_stream() {
        let spec = FaultSpec {
            cascade: Some(cascade(0.7)),
            ..FaultSpec::default()
        };
        let a = spec.compile(&pool(), &mut SimRng::new(42));
        let b = spec.compile(&pool(), &mut SimRng::new(42));
        assert_eq!(a, b, "fixed-seed cascades must replay identically");

        // Adding unrelated random outages must not move the cascade: its
        // draws come from the domain's own forked stream.
        let noisy = FaultSpec {
            random_outages_per_resource: 2.0,
            cascade: Some(cascade(0.7)),
            ..FaultSpec::default()
        };
        let n = noisy.compile(&pool(), &mut SimRng::new(42));
        let cascade_only: Vec<_> = n
            .outages
            .iter()
            .filter(|o| o.kind == OutageKind::Permanent)
            .collect();
        let plain: Vec<_> = a.outages.iter().collect();
        assert_eq!(cascade_only, plain);
    }

    #[test]
    fn cascade_validate_rejects_broken_declarations() {
        let mut no_domain = cascade(1.0);
        no_domain.trigger.resource = "nowhere".into();
        assert!(no_domain
            .validate()
            .unwrap_err()
            .contains("no declared domain"));

        let mut dup = cascade(1.0);
        dup.domains.push(DomainSpec {
            name: "zone-c".into(),
            members: vec!["alpha".into()],
        });
        assert!(dup.validate().unwrap_err().contains("more than one domain"));

        let mut bad_chance = cascade(1.5);
        assert!(bad_chance.validate().unwrap_err().contains("[0, 1]"));
        bad_chance.propagation_chance = 0.5;
        bad_chance.propagation_delay_secs = (120.0, 30.0);
        assert!(bad_chance.validate().unwrap_err().contains("inverted"));

        let mut empty = cascade(1.0);
        empty.domains[1].members.clear();
        assert!(empty.validate().unwrap_err().contains("no members"));

        // The whole-spec validate surfaces cascade problems too.
        let spec = FaultSpec {
            cascade: Some(no_domain),
            ..FaultSpec::default()
        };
        assert!(spec.validate().is_err());
    }

    #[test]
    fn cascade_and_evacuation_serde_roundtrip() {
        let spec = FaultSpec {
            cascade: Some(cascade(0.8)),
            ..FaultSpec::default()
        };
        let json = serde_json::to_string(&spec).unwrap();
        let back: FaultSpec = serde_json::from_str(&json).unwrap();
        assert_eq!(spec, back);
        // Pre-cascade specs (no `cascade` key) must still load as noop.
        let legacy: FaultSpec = serde_json::from_str(r#"{"unit_failure_chance": 0.1}"#).unwrap();
        assert!(legacy.cascade.is_none());

        let policy = RecoveryPolicy {
            evacuation: Some(EvacuationSpec::default()),
            checkpoint_interval: SimDuration::from_secs(120.0),
            ..RecoveryPolicy::default()
        };
        let json = serde_json::to_string(&policy).unwrap();
        let back: RecoveryPolicy = serde_json::from_str(&json).unwrap();
        assert_eq!(policy, back);
        // Pre-evacuation policies must still load with both features off.
        let legacy: RecoveryPolicy =
            serde_json::from_str(r#"{"pilot_replacement": true}"#).unwrap();
        assert!(legacy.evacuation.is_none());
        assert!(legacy.checkpoint_interval.is_zero());
    }

    #[test]
    fn recovery_policy_validate_rejects_inverted_caps() {
        assert!(RecoveryPolicy::default().validate().is_ok());
        assert!(RecoveryPolicy::with_detection().validate().is_ok());
        assert!(RecoveryPolicy::disabled().validate().is_ok());

        let inverted = RecoveryPolicy {
            replacement_backoff: SimDuration::from_secs(600.0),
            replacement_backoff_cap: SimDuration::from_secs(60.0),
            ..RecoveryPolicy::default()
        };
        assert!(inverted.validate().unwrap_err().contains("inverted cap"));

        let zero_blacklist = RecoveryPolicy {
            blacklist_after: 0,
            ..RecoveryPolicy::default()
        };
        assert!(zero_blacklist
            .validate()
            .unwrap_err()
            .contains("blacklist_after"));

        let bad_alarm = RecoveryPolicy {
            evacuation: Some(EvacuationSpec {
                alarm_threshold: 0,
                ..EvacuationSpec::default()
            }),
            ..RecoveryPolicy::default()
        };
        assert!(bad_alarm
            .validate()
            .unwrap_err()
            .contains("alarm_threshold"));

        let bad_window = RecoveryPolicy {
            evacuation: Some(EvacuationSpec {
                alarm_window_secs: 0.0,
                ..EvacuationSpec::default()
            }),
            ..RecoveryPolicy::default()
        };
        assert!(bad_window.validate().unwrap_err().contains("empty window"));
    }

    proptest::proptest! {
        /// Replacement backoff is monotone in generation, saturates at
        /// the cap, and never overflows — even at generations far past
        /// any real replacement budget.
        #[test]
        fn prop_replacement_delay_monotone_and_capped(
            base in 1.0f64..600.0,
            cap_factor in 1.0f64..64.0,
            gen in 0u32..10_000,
        ) {
            let p = RecoveryPolicy {
                replacement_backoff: SimDuration::from_secs(base),
                replacement_backoff_cap: SimDuration::from_secs(base * cap_factor),
                ..RecoveryPolicy::default()
            };
            p.validate().unwrap();
            let d = p.replacement_delay(gen);
            let next = p.replacement_delay(gen.saturating_add(1));
            proptest::prop_assert!(d.as_secs().is_finite());
            proptest::prop_assert!(next >= d, "monotone in generation");
            proptest::prop_assert!(d <= p.replacement_backoff_cap, "capped");
            proptest::prop_assert!(d >= p.replacement_backoff.min(p.replacement_backoff_cap));
            // Saturation: far past the cap the delay is exactly the cap.
            proptest::prop_assert_eq!(p.replacement_delay(40), p.replacement_backoff_cap);
        }

        /// Unit-retry backoff is monotone in attempt and saturates at the
        /// shared replacement cap without overflow at attempts >= 30.
        #[test]
        fn prop_unit_retry_delay_monotone_and_capped(
            base in 0.5f64..120.0,
            attempt in 1u32..10_000,
        ) {
            let p = RecoveryPolicy {
                unit_retry_backoff: SimDuration::from_secs(base),
                ..RecoveryPolicy::default()
            };
            let d = p.unit_retry_delay(attempt);
            let next = p.unit_retry_delay(attempt.saturating_add(1));
            proptest::prop_assert!(d.as_secs().is_finite());
            proptest::prop_assert!(next >= d, "monotone in attempt");
            proptest::prop_assert!(d <= p.replacement_backoff_cap, "capped at the shared ceiling");
            proptest::prop_assert_eq!(p.unit_retry_delay(30), p.unit_retry_delay(100_000));
        }
    }
}
