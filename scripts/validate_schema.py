#!/usr/bin/env python3
"""Unified schema validator for the repo's machine-readable artifacts.

One entry point for the three JSON families CI gates on, replacing the
hand-rolled inline validators that used to live in each workflow job:

    validate_schema.py bench BENCH_quick.json
    validate_schema.py campaign campaign.jsonl --timing --command ablation-cascade
    validate_schema.py profile profile.json [--timing]

Exits non-zero with a diagnostic on the first violation. Volatile fields
(walls, rates) are type- and range-checked only; deterministic fields are
checked structurally so the validator stays seed-independent.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"validate_schema: {msg}", file=sys.stderr)
    sys.exit(1)


def require(cond, msg):
    if not cond:
        fail(msg)


def is_num(x):
    return isinstance(x, (int, float)) and not isinstance(x, bool)


# ---------------------------------------------------------------- bench


def validate_bench(path, args):
    doc = json.load(open(path))
    require(doc.get("schema") == "aimes-bench-v1", f"schema: {doc.get('schema')}")
    require(isinstance(doc.get("seed"), int), "seed must be an integer")
    require(isinstance(doc.get("quick"), bool), "quick must be a bool")
    require(
        isinstance(doc.get("peak_rss_bytes"), int) and doc["peak_rss_bytes"] > 0,
        "top-level peak_rss_bytes must be a positive integer",
    )
    campaigns = doc.get("campaigns")
    require(isinstance(campaigns, list) and campaigns, "campaigns must be non-empty")
    for c in campaigns:
        label = c.get("label")
        require(isinstance(label, str) and label, "campaign label missing")
        for key in ("events", "runs", "peak_rss_bytes"):
            require(
                isinstance(c.get(key), int) and c[key] >= 0,
                f"{label}: {key} must be a non-negative integer",
            )
        for key in ("wall_secs", "events_per_sec", "runs_per_sec", "allocs_per_event"):
            require(
                is_num(c.get(key)) and c[key] >= 0,
                f"{label}: {key} must be a non-negative number",
            )
        require(c["wall_secs"] > 0, f"{label}: wall_secs must be positive")
    print(f"bench OK: {len(campaigns)} campaigns, seed {doc['seed']}")


# ------------------------------------------------------------- campaign


def validate_campaign(path, args):
    lines = [json.loads(l) for l in open(path)]
    require(lines, "empty manifest")
    meta = lines[0]
    require(meta.get("kind") == "meta", "first line must be the meta record")
    require(meta.get("schema") == "aimes-campaign-v1", f"schema: {meta.get('schema')}")
    if args.command:
        require(
            meta.get("command") == args.command,
            f"command: {meta.get('command')} != {args.command}",
        )
    runs = [l for l in lines if l.get("kind") == "run"]
    pools = [l for l in lines if l.get("kind") == "pool"]
    require(len(runs) == meta.get("total_jobs"), "run record per job")
    require(
        [r["job"] for r in runs] == list(range(len(runs))),
        "manifest must list runs in canonical job order",
    )
    for r in runs:
        require(r.get("outcome") in ("ok", "failed"), f"outcome: {r.get('outcome')}")
        if r["outcome"] == "ok":
            require(
                r.get("ttc_secs", 0) > 0 and r.get("error_kind") is None,
                f"job {r['job']}: ok runs carry ttc and no error taxonomy",
            )
        else:
            require(r.get("error_kind"), f"job {r['job']}: failed runs carry error_kind")
        if args.timing:
            t = r.get("timing")
            require(t is not None, f"job {r['job']}: timing mode records the wall split")
            require(
                t["wall_end_secs"] >= t["wall_start_secs"],
                f"job {r['job']}: wall must not run backwards",
            )
        else:
            require(
                r.get("timing") is None,
                f"job {r['job']}: timing must be gated off without --campaign-timing",
            )
    if args.timing:
        require(len(pools) == 1, "timing mode appends exactly one pool record")
        workers = pools[0].get("workers")
        require(workers, "per-worker accounting present")
        require(
            sum(w["items"] for w in workers) == len(runs),
            "worker items must sum to the run count",
        )
        for w in workers:
            require(
                0.0 <= w["busy_fraction"] <= 1.0,
                f"worker {w.get('worker')}: busy_fraction out of range",
            )
        print(f"campaign OK: {len(runs)} runs, {len(workers)} workers")
    else:
        require(not pools, "pool record requires timing mode")
        print(f"campaign OK: {len(runs)} runs (timing gated)")


# -------------------------------------------------------------- profile

ENGINE_KEYS = (
    "events_processed",
    "events_scheduled",
    "events_cancelled",
    "pending_events_hwm",
    "compactions",
)


def validate_profile(path, args):
    doc = json.load(open(path))
    require(doc.get("schema") == "aimes-profile-v1", f"schema: {doc.get('schema')}")
    require(isinstance(doc.get("command"), str) and doc["command"], "command missing")
    require(isinstance(doc.get("seed"), int), "seed must be an integer")
    require(isinstance(doc.get("runs"), int) and doc["runs"] > 0, "runs must be positive")
    engine = doc.get("engine")
    require(isinstance(engine, dict), "engine section missing")
    for key in ENGINE_KEYS:
        require(
            isinstance(engine.get(key), int) and engine[key] >= 0,
            f"engine.{key} must be a non-negative integer",
        )
    require(engine["events_processed"] > 0, "engine must have processed events")
    labels = doc.get("labels")
    require(isinstance(labels, list) and labels, "labels must be non-empty")
    names = [l.get("label") for l in labels]
    require(names == sorted(names), "labels must be sorted by name (deterministic)")
    for l in labels:
        require(isinstance(l.get("count"), int) and l["count"] > 0, f"{l}: bad count")
    timing = doc.get("timing")
    if args.timing:
        require(timing is not None, "--timing requires the timing section")
    if timing is None:
        for l in labels:
            require(
                l.get("timing") is None,
                "label timing must be gated with the document timing section",
            )
        require(doc.get("alloc") is None, "alloc section requires timing mode")
        print(f"profile OK: {len(labels)} labels, timing gated")
        return
    require(is_num(timing.get("total_wall_secs")), "timing.total_wall_secs")
    require(is_num(timing.get("attributed_secs")), "timing.attributed_secs")
    for l in labels:
        lt = l.get("timing")
        require(lt is not None, f"{l['label']}: timed docs carry label timing")
        for key in ("exclusive_secs", "share", "mean_us", "p50_us", "p95_us", "p99_us"):
            require(is_num(lt.get(key)) and lt[key] >= 0, f"{l['label']}: {key}")
    coverage = timing.get("coverage")
    if coverage is not None:
        # Sequential harnesses attribute the whole wall: the exclusive
        # times must tile it to within 5% (the tentpole's acceptance bar).
        require(
            0.95 <= coverage <= 1.05,
            f"attributed/wall coverage {coverage:.4f} outside [0.95, 1.05]",
        )
    alloc = doc.get("alloc")
    if alloc is not None:
        for key in ("allocs", "bytes_allocated", "peak_bytes"):
            require(
                isinstance(alloc.get(key), int) and alloc[key] >= 0, f"alloc.{key}"
            )
        require(is_num(alloc.get("allocs_per_event")), "alloc.allocs_per_event")
    cov = f", coverage {coverage:.3f}" if coverage is not None else ""
    print(f"profile OK: {len(labels)} labels, {doc['runs']} runs{cov}")


# ------------------------------------------------------------------ cli


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("family", choices=("bench", "campaign", "profile"))
    parser.add_argument("path")
    parser.add_argument(
        "--timing",
        action="store_true",
        help="require the volatile timing sections (campaign/profile families)",
    )
    parser.add_argument(
        "--command",
        help="expected producing command recorded in the document (campaign family)",
    )
    args = parser.parse_args()
    {"bench": validate_bench, "campaign": validate_campaign, "profile": validate_profile}[
        args.family
    ](args.path, args)


if __name__ == "__main__":
    main()
